"""Unit tests for circuit compilation (cached variational unitaries)."""

import numpy as np
import pytest

from repro.marl.actors import QuantumActor, QuantumActorGroup
from repro.quantum.backends import StatevectorBackend
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.compile import CompiledCircuit, split_index
from repro.quantum.vqc import build_vqc


class TestSplitIndex:
    def test_standard_vqc_splits_after_encoding(self):
        vqc = build_vqc(4, 16, 50, seed=1)
        assert split_index(vqc.circuit) == 16

    def test_no_inputs_compiles_everything(self):
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        circuit.add("cnot", (0, 1))
        assert split_index(circuit) == 0

    def test_interleaved_inputs_limit_suffix(self):
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        circuit.add("ry", (0,), ParameterRef.input(0))
        circuit.add("rz", (1,), ParameterRef.weight(1))
        assert split_index(circuit) == 2


class TestCompiledEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_uncompiled_backend(self, rng, seed):
        vqc = build_vqc(4, 8, 30, seed=seed)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(6, 8))
        exact = StatevectorBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        assert np.allclose(compiled.run(inputs, weights), exact, atol=1e-12)

    def test_per_sample_weights_match(self, rng):
        vqc = build_vqc(3, 3, 12, seed=4)
        weights = np.stack([vqc.initial_weights(rng) for _ in range(4)])
        inputs = rng.uniform(size=(4, 3))
        exact = StatevectorBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        assert np.allclose(compiled.run(inputs, weights), exact, atol=1e-12)

    def test_suffix_unitary_is_unitary(self, rng):
        vqc = build_vqc(3, 3, 15, seed=5)
        weights = vqc.initial_weights(rng)
        compiled = CompiledCircuit(vqc.circuit)
        unitary = compiled.suffix_unitary(weights)
        assert np.allclose(
            unitary @ unitary.conj().T, np.eye(8), atol=1e-10
        )

    def test_evolve_without_inputs(self, rng):
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        circuit.add("rx", (1,), ParameterRef.weight(0))
        compiled = CompiledCircuit(circuit)
        psi = compiled.evolve(weights=np.array([0.7]), batch_size=3)
        exact = StatevectorBackend().evolve(
            circuit, None, np.array([0.7]), batch_size=3
        )
        assert np.allclose(psi, exact, atol=1e-12)


class TestCaching:
    def test_cache_hit_returns_same_object(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = vqc.initial_weights(rng)
        compiled = CompiledCircuit(vqc.circuit)
        first = compiled.suffix_unitary(weights)
        second = compiled.suffix_unitary(weights.copy())
        assert first is second  # content-equal weights hit the cache

    def test_inplace_mutation_invalidates(self, rng):
        """Adam mutates weight arrays in place; the cache must notice."""
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = vqc.initial_weights(rng)
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        inputs = rng.uniform(size=(2, 2))
        before = compiled.run(inputs, weights)
        weights += 0.3  # in-place update, same array object
        after = compiled.run(inputs, weights)
        exact = StatevectorBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert not np.allclose(before, after)
        assert np.allclose(after, exact, atol=1e-12)

    def test_manual_invalidate(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = vqc.initial_weights(rng)
        compiled = CompiledCircuit(vqc.circuit)
        first = compiled.suffix_unitary(weights)
        compiled.invalidate()
        second = compiled.suffix_unitary(weights)
        assert first is not second
        assert np.allclose(first, second)

    def test_weight_row_mismatch_rejected(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = np.stack([vqc.initial_weights(rng) for _ in range(3)])
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        with pytest.raises(ValueError):
            compiled.run(rng.uniform(size=(2, 2)), weights)

    def test_ensemble_weights_cycle_over_batch(self, rng):
        """Batch k*G with G weight rows: row b uses weight row b % G."""
        vqc = build_vqc(3, 3, 12, seed=5)
        n_sets, k = 3, 4
        weights = np.stack([vqc.initial_weights(rng) for _ in range(n_sets)])
        inputs = rng.uniform(size=(k * n_sets, 3))
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        outputs = compiled.run(inputs, weights)
        exact = StatevectorBackend().run(
            vqc.circuit,
            vqc.observables,
            inputs,
            np.tile(weights, (k, 1)),
        )
        assert np.allclose(outputs, exact, atol=1e-12)
        # Only the distinct suffix unitaries are cached, keyed
        # independently of the batch tiling factor.
        assert compiled._cached_unitary.shape[0] == n_sets
        cached = compiled._cached_unitary
        compiled.run(inputs[: 2 * n_sets], weights)
        assert compiled._cached_unitary is cached

    def test_run_without_observables_rejected(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        compiled = CompiledCircuit(vqc.circuit)
        with pytest.raises(ValueError):
            compiled.run(rng.uniform(size=(1, 2)), vqc.initial_weights(rng))

    def test_repr(self):
        vqc = build_vqc(2, 2, 8, seed=6)
        assert "compiled=8 ops" in repr(CompiledCircuit(vqc.circuit))


class TestActorGroupIntegration:
    def test_compiled_group_matches_uncompiled(self, rng):
        vqc = build_vqc(4, 4, 20, seed=7)
        actors = [QuantumActor(vqc, np.random.default_rng(i)) for i in range(4)]
        compiled_group = QuantumActorGroup(actors, compile_rollouts=True)
        plain_group = QuantumActorGroup(actors, compile_rollouts=False)
        observations = [rng.uniform(size=4) for _ in range(4)]
        assert np.allclose(
            compiled_group.team_probabilities(observations),
            plain_group.team_probabilities(observations),
            atol=1e-12,
        )

    def test_compiled_group_tracks_training_updates(self, rng):
        vqc = build_vqc(4, 4, 20, seed=7)
        actors = [QuantumActor(vqc, np.random.default_rng(i)) for i in range(4)]
        group = QuantumActorGroup(actors, compile_rollouts=True)
        observations = [rng.uniform(size=4) for _ in range(4)]
        before = group.team_probabilities(observations)
        for actor in actors:
            actor.layer.weights.data += 0.2  # simulated optimiser step
        after = group.team_probabilities(observations)
        individual = np.concatenate(
            [a.probabilities(o) for a, o in zip(actors, observations)]
        )
        assert not np.allclose(before, after)
        assert np.allclose(after, individual, atol=1e-12)
