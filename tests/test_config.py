"""Unit tests for configuration dataclasses (Table II conformance)."""

import numpy as np
import pytest

from repro.config import (
    COMP2_NET,
    COMP3_NET,
    ServingConfig,
    SingleHopConfig,
    TrainingConfig,
    VQCConfig,
    replace,
)
from repro.nn.layers import count_parameters


class TestSingleHopConfig:
    def test_table2_defaults(self):
        cfg = SingleHopConfig()
        assert cfg.n_clouds == 2
        assert cfg.n_agents == 4
        assert cfg.packet_amounts == (0.1, 0.2)
        assert cfg.w_p == 0.3
        assert cfg.w_r == 4.0
        assert cfg.cloud_service_rate == 0.3
        assert cfg.queue_capacity == 1.0

    def test_table1_derived_sizes(self):
        cfg = SingleHopConfig()
        assert cfg.n_actions == 4          # |I| * |P| = 2 * 2
        assert cfg.observation_size == 4   # own q, own q(t-1), 2 clouds
        assert cfg.state_size == 16        # 4 agents x 4 features

    def test_terminate_on_overflow_defaults_off(self):
        # Default-off keeps the paper's fixed-length episodes; opting in
        # makes episode_limit a horizon *cap* (the ragged env family).
        assert SingleHopConfig().terminate_on_overflow is False
        cfg = SingleHopConfig(terminate_on_overflow=True)
        assert cfg.terminate_on_overflow is True

    def test_replace(self):
        cfg = replace(SingleHopConfig(), episode_limit=10)
        assert cfg.episode_limit == 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SingleHopConfig().n_clouds = 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clouds": 0},
            {"n_agents": 0},
            {"packet_amounts": ()},
            {"packet_amounts": (-0.1,)},
            {"queue_capacity": 0.0},
            {"episode_limit": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SingleHopConfig(**kwargs)


class TestVQCConfig:
    def test_table2_defaults(self):
        cfg = VQCConfig()
        assert cfg.n_qubits == 4
        assert cfg.n_variational_gates == 50
        assert cfg.template == "random"
        assert cfg.encoding_scale == pytest.approx(np.pi)

    def test_validation(self):
        with pytest.raises(ValueError):
            VQCConfig(n_qubits=0)
        with pytest.raises(ValueError):
            VQCConfig(n_variational_gates=0)


class TestTrainingConfig:
    def test_table2_learning_rates(self):
        cfg = TrainingConfig()
        assert cfg.actor_lr == 1e-4
        assert cfg.critic_lr == 1e-5
        assert cfg.n_epochs == 1000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_epochs": 0},
            {"episodes_per_epoch": 0},
            {"gamma": 1.0},
            {"gamma": -0.1},
            {"actor_lr": 0.0},
            {"critic_lr": -1.0},
            {"target_update_period": 0},
            {"rollout_envs": 0},
            {"rollout_envs": -4},
            {"rollout_envs": 2.5},
            {"rollout_workers": 0},
            {"rollout_workers": -2},
            {"rollout_workers": 1.5},
            {"rollout_mode": "parallel"},
            {"rollout_mode": "Vector"},
            {"rollout_mode": ""},
            {"rollout_transport": "tcp"},
            {"rollout_transport": "Shm"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_rollout_validation_messages_name_the_field(self):
        """Bad rollout settings fail at construction with a clear message,
        not deep inside the trainer."""
        with pytest.raises(ValueError, match="rollout_envs"):
            TrainingConfig(rollout_envs=0)
        with pytest.raises(ValueError, match="rollout_workers"):
            TrainingConfig(rollout_workers=0)
        with pytest.raises(ValueError, match="rollout_mode"):
            TrainingConfig(rollout_mode="threads")
        with pytest.raises(ValueError, match="rollout_transport"):
            TrainingConfig(rollout_transport="ring")

    def test_rollout_modes_accepted(self):
        for mode in ("auto", "serial", "vector", "sharded"):
            assert TrainingConfig(rollout_mode=mode).rollout_mode == mode
        assert TrainingConfig(rollout_envs=8, rollout_workers=4).rollout_workers == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            # An explicit transport with settings that can never start the
            # sharded engine is a misconfiguration, not a no-op.
            {"rollout_transport": "shm"},
            {"rollout_transport": "pipe"},
            {"rollout_transport": "shm", "rollout_mode": "serial"},
            {"rollout_transport": "shm", "rollout_mode": "vector",
             "rollout_envs": 8},
            {"rollout_transport": "pipe", "rollout_mode": "vector",
             "rollout_workers": 4},
            # Many workers over one *effective* env copy still collapse to
            # in-process collection (the trainer clamps W to the copies).
            {"rollout_transport": "shm", "rollout_workers": 4},
            {"rollout_transport": "shm", "rollout_workers": 2,
             "rollout_envs": 4, "episodes_per_epoch": 1},
        ],
    )
    def test_inert_transport_combinations_rejected(self, kwargs):
        with pytest.raises(ValueError, match="rollout_transport"):
            TrainingConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rollout_transport": "shm", "rollout_mode": "sharded"},
            {"rollout_transport": "pipe", "rollout_mode": "sharded"},
            {"rollout_transport": "shm", "rollout_workers": 2,
             "rollout_envs": 2},
            {"rollout_transport": "auto"},  # inert-safe: resolves lazily
            {"rollout_transport": "auto", "rollout_mode": "serial"},
        ],
    )
    def test_effective_transport_combinations_accepted(self, kwargs):
        config = TrainingConfig(**kwargs)
        assert config.rollout_transport == kwargs["rollout_transport"]

    def test_effective_rollout_clamps(self):
        """The divisor/worker clamps are visible on the config itself."""
        config = TrainingConfig(episodes_per_epoch=6, rollout_envs=4,
                                rollout_workers=16)
        assert config.effective_rollout_envs == 3
        assert config.effective_rollout_workers == 3
        assert TrainingConfig(episodes_per_epoch=7,
                              rollout_envs=4).effective_rollout_envs == 1


class TestServingConfig:
    def test_defaults_valid(self):
        cfg = ServingConfig()
        assert cfg.max_batch == 32
        assert cfg.workers == 1
        assert cfg.transport == "auto"
        assert cfg.effective_transport == "pipe"

    @pytest.mark.parametrize("overrides", [
        {"max_batch": 0},
        {"max_batch": 1.5},
        {"max_wait_us": -1},
        {"max_pending": -1},
        {"workers": 0},
        {"transport": "carrier-pigeon"},
        {"reload_poll_ms": -5},
        {"port": 70000},
    ])
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServingConfig(**overrides)

    def test_inert_transport_knob_rejected(self):
        """An explicit transport with workers=1 would silently do nothing."""
        with pytest.raises(ValueError, match="workers=1"):
            ServingConfig(transport="shm")
        # Meaningful with sharding, and auto resolves to pipe.
        assert ServingConfig(workers=2, transport="shm").effective_transport \
            == "shm"
        assert ServingConfig(workers=2).effective_transport == "pipe"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServingConfig().max_batch = 64


class TestTrainerSelection:
    def test_defaults_to_mapg_with_unset_es_knobs(self):
        config = TrainingConfig()
        assert config.trainer == "mapg"
        assert config.es_population is None
        assert config.es_sigma is None

    def test_es_defaults_resolve(self):
        config = TrainingConfig(trainer="es")
        assert config.effective_es_population == 8
        assert config.effective_es_sigma == 0.1
        assert config.effective_es_lr == 0.05
        assert config.effective_es_weight_decay == 0.0

    def test_unknown_trainer_rejected(self):
        with pytest.raises(ValueError, match="trainer"):
            TrainingConfig(trainer="evolution")

    @pytest.mark.parametrize(
        "kwargs",
        [
            # Non-positive / malformed ES knobs.
            {"trainer": "es", "es_population": 0},
            {"trainer": "es", "es_population": -2},
            {"trainer": "es", "es_population": 2.5},
            {"trainer": "es", "es_sigma": -0.1},
            {"trainer": "es", "es_lr": 0.0},
            {"trainer": "es", "es_lr": -1.0},
            {"trainer": "es", "es_weight_decay": -0.5},
            # sigma=0 is only the evaluation mode with a single member.
            {"trainer": "es", "es_sigma": 0.0},
            {"trainer": "es", "es_population": 4, "es_sigma": 0.0},
            # ... and a single member with sigma>0 can never update.
            {"trainer": "es", "es_population": 1},
            {"trainer": "es", "es_population": 1, "es_sigma": 0.2},
        ],
    )
    def test_bad_es_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            # ES knobs are inert under the gradient trainer — reject, do
            # not silently ignore (mirrors the rollout_transport policy).
            {"es_population": 4},
            {"es_sigma": 0.2},
            {"es_lr": 0.1},
            {"es_weight_decay": 0.01},
            {"trainer": "mapg", "es_population": 8},
        ],
    )
    def test_inert_es_knobs_rejected_under_mapg(self, kwargs):
        with pytest.raises(ValueError, match="es_"):
            TrainingConfig(**kwargs)

    def test_mapg_only_knobs_rejected_under_es(self):
        with pytest.raises(ValueError, match="entropy_coef"):
            TrainingConfig(trainer="es", entropy_coef=0.01)

    def test_evaluation_mode_accepted(self):
        config = TrainingConfig(trainer="es", es_population=1, es_sigma=0.0)
        assert config.effective_es_sigma == 0.0
        assert config.effective_es_population == 1

    def test_es_population_multiplies_shardable_rows(self):
        """Workers shard population * envs-per-member rows under ES."""
        config = TrainingConfig(
            trainer="es", es_population=8, rollout_workers=6
        )
        assert config.total_rollout_rows == 8
        assert config.effective_rollout_workers == 6
        config = TrainingConfig(
            trainer="es", es_population=4, rollout_envs=2,
            episodes_per_epoch=4, rollout_workers=16,
        )
        assert config.total_rollout_rows == 8
        assert config.effective_rollout_workers == 8
        # An explicit transport is valid whenever the ES pool can shard.
        config = TrainingConfig(
            trainer="es", es_population=4, rollout_workers=2,
            rollout_transport="shm",
        )
        assert config.rollout_transport == "shm"
        # ... and still rejected when it cannot (one member, one row —
        # the sigma=0 evaluation mode keeps the es validation quiet).
        with pytest.raises(ValueError, match="rollout_transport"):
            TrainingConfig(
                trainer="es", es_population=1, es_sigma=0.0,
                rollout_transport="shm",
            )


class TestBaselineShapes:
    def test_comp2_near_50_parameters(self):
        cfg = SingleHopConfig()
        actor = count_parameters(
            (cfg.observation_size, *COMP2_NET.actor_hidden, cfg.n_actions)
        )
        critic = count_parameters((cfg.state_size, *COMP2_NET.critic_hidden, 1))
        assert 40 <= actor <= 60
        assert 40 <= critic <= 60

    def test_comp3_over_40k(self):
        cfg = SingleHopConfig()
        actor = count_parameters(
            (cfg.observation_size, *COMP3_NET.actor_hidden, cfg.n_actions)
        )
        critic = count_parameters((cfg.state_size, *COMP3_NET.critic_hidden, 1))
        assert cfg.n_agents * actor + critic > 40_000
