"""Unit tests for configuration dataclasses (Table II conformance)."""

import numpy as np
import pytest

from repro.config import (
    COMP2_NET,
    COMP3_NET,
    SingleHopConfig,
    TrainingConfig,
    VQCConfig,
    replace,
)
from repro.nn.layers import count_parameters


class TestSingleHopConfig:
    def test_table2_defaults(self):
        cfg = SingleHopConfig()
        assert cfg.n_clouds == 2
        assert cfg.n_agents == 4
        assert cfg.packet_amounts == (0.1, 0.2)
        assert cfg.w_p == 0.3
        assert cfg.w_r == 4.0
        assert cfg.cloud_service_rate == 0.3
        assert cfg.queue_capacity == 1.0

    def test_table1_derived_sizes(self):
        cfg = SingleHopConfig()
        assert cfg.n_actions == 4          # |I| * |P| = 2 * 2
        assert cfg.observation_size == 4   # own q, own q(t-1), 2 clouds
        assert cfg.state_size == 16        # 4 agents x 4 features

    def test_replace(self):
        cfg = replace(SingleHopConfig(), episode_limit=10)
        assert cfg.episode_limit == 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SingleHopConfig().n_clouds = 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clouds": 0},
            {"n_agents": 0},
            {"packet_amounts": ()},
            {"packet_amounts": (-0.1,)},
            {"queue_capacity": 0.0},
            {"episode_limit": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SingleHopConfig(**kwargs)


class TestVQCConfig:
    def test_table2_defaults(self):
        cfg = VQCConfig()
        assert cfg.n_qubits == 4
        assert cfg.n_variational_gates == 50
        assert cfg.template == "random"
        assert cfg.encoding_scale == pytest.approx(np.pi)

    def test_validation(self):
        with pytest.raises(ValueError):
            VQCConfig(n_qubits=0)
        with pytest.raises(ValueError):
            VQCConfig(n_variational_gates=0)


class TestTrainingConfig:
    def test_table2_learning_rates(self):
        cfg = TrainingConfig()
        assert cfg.actor_lr == 1e-4
        assert cfg.critic_lr == 1e-5
        assert cfg.n_epochs == 1000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_epochs": 0},
            {"episodes_per_epoch": 0},
            {"gamma": 1.0},
            {"gamma": -0.1},
            {"actor_lr": 0.0},
            {"critic_lr": -1.0},
            {"target_update_period": 0},
            {"rollout_envs": 0},
            {"rollout_envs": -4},
            {"rollout_envs": 2.5},
            {"rollout_workers": 0},
            {"rollout_workers": -2},
            {"rollout_workers": 1.5},
            {"rollout_mode": "parallel"},
            {"rollout_mode": "Vector"},
            {"rollout_mode": ""},
            {"rollout_transport": "tcp"},
            {"rollout_transport": "Shm"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_rollout_validation_messages_name_the_field(self):
        """Bad rollout settings fail at construction with a clear message,
        not deep inside the trainer."""
        with pytest.raises(ValueError, match="rollout_envs"):
            TrainingConfig(rollout_envs=0)
        with pytest.raises(ValueError, match="rollout_workers"):
            TrainingConfig(rollout_workers=0)
        with pytest.raises(ValueError, match="rollout_mode"):
            TrainingConfig(rollout_mode="threads")
        with pytest.raises(ValueError, match="rollout_transport"):
            TrainingConfig(rollout_transport="ring")

    def test_rollout_modes_accepted(self):
        for mode in ("auto", "serial", "vector", "sharded"):
            assert TrainingConfig(rollout_mode=mode).rollout_mode == mode
        assert TrainingConfig(rollout_envs=8, rollout_workers=4).rollout_workers == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            # An explicit transport with settings that can never start the
            # sharded engine is a misconfiguration, not a no-op.
            {"rollout_transport": "shm"},
            {"rollout_transport": "pipe"},
            {"rollout_transport": "shm", "rollout_mode": "serial"},
            {"rollout_transport": "shm", "rollout_mode": "vector",
             "rollout_envs": 8},
            {"rollout_transport": "pipe", "rollout_mode": "vector",
             "rollout_workers": 4},
            # Many workers over one *effective* env copy still collapse to
            # in-process collection (the trainer clamps W to the copies).
            {"rollout_transport": "shm", "rollout_workers": 4},
            {"rollout_transport": "shm", "rollout_workers": 2,
             "rollout_envs": 4, "episodes_per_epoch": 1},
        ],
    )
    def test_inert_transport_combinations_rejected(self, kwargs):
        with pytest.raises(ValueError, match="rollout_transport"):
            TrainingConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rollout_transport": "shm", "rollout_mode": "sharded"},
            {"rollout_transport": "pipe", "rollout_mode": "sharded"},
            {"rollout_transport": "shm", "rollout_workers": 2,
             "rollout_envs": 2},
            {"rollout_transport": "auto"},  # inert-safe: resolves lazily
            {"rollout_transport": "auto", "rollout_mode": "serial"},
        ],
    )
    def test_effective_transport_combinations_accepted(self, kwargs):
        config = TrainingConfig(**kwargs)
        assert config.rollout_transport == kwargs["rollout_transport"]

    def test_effective_rollout_clamps(self):
        """The divisor/worker clamps are visible on the config itself."""
        config = TrainingConfig(episodes_per_epoch=6, rollout_envs=4,
                                rollout_workers=16)
        assert config.effective_rollout_envs == 3
        assert config.effective_rollout_workers == 3
        assert TrainingConfig(episodes_per_epoch=7,
                              rollout_envs=4).effective_rollout_envs == 1


class TestBaselineShapes:
    def test_comp2_near_50_parameters(self):
        cfg = SingleHopConfig()
        actor = count_parameters(
            (cfg.observation_size, *COMP2_NET.actor_hidden, cfg.n_actions)
        )
        critic = count_parameters((cfg.state_size, *COMP2_NET.critic_hidden, 1))
        assert 40 <= actor <= 60
        assert 40 <= critic <= 60

    def test_comp3_over_40k(self):
        cfg = SingleHopConfig()
        actor = count_parameters(
            (cfg.observation_size, *COMP3_NET.actor_hidden, cfg.n_actions)
        )
        critic = count_parameters((cfg.state_size, *COMP3_NET.critic_hidden, 1))
        assert cfg.n_agents * actor + critic > 40_000
