"""Unit tests for centralised critics."""

import numpy as np
import pytest

from repro.marl.critics import ClassicalCentralCritic, QuantumCentralCritic
from repro.nn.tensor import Tensor
from repro.quantum.vqc import build_vqc


@pytest.fixture
def critic_vqc():
    return build_vqc(4, 16, 20, seed=5)


class TestQuantumCentralCritic:
    def test_forward_shape(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic(Tensor(rng.uniform(size=(6, 16))))
        assert values.shape == (6,)

    def test_values_match_forward(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        states = rng.uniform(size=(4, 16))
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_value_scale_bounds_output(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic.values(rng.uniform(size=(8, 16)))
        assert np.all(np.abs(values) <= 10.0 + 1e-9)

    def test_value_scale_is_linear(self, critic_vqc, rng):
        small = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(1), value_scale=1.0
        )
        large = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(1), value_scale=5.0
        )
        states = rng.uniform(size=(3, 16))
        assert np.allclose(5.0 * small.values(states), large.values(states))

    def test_parameter_budget_fixed_head(self, critic_vqc, rng):
        """Fixed scale keeps exactly the ansatz budget (Table II's 50)."""
        critic = QuantumCentralCritic(critic_vqc, rng)
        assert critic.n_parameters() == 20

    def test_trainable_head_adds_parameters(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, trainable_head=True)
        assert critic.n_parameters() == 20 + 4 + 1

    def test_trainable_head_forward(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, trainable_head=True)
        states = rng.uniform(size=(3, 16))
        assert critic(Tensor(states)).shape == (3,)
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_gradients_flow(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic(Tensor(rng.uniform(size=(2, 16))))
        (values * values).sum().backward()
        assert critic.layer.weights.grad is not None

    def test_1d_state_promoted_in_values(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng)
        assert critic.values(rng.uniform(size=16)).shape == (1,)


class TestClassicalCentralCritic:
    def test_forward_shape(self, rng):
        critic = ClassicalCentralCritic(16, (8,), rng)
        assert critic(Tensor(rng.normal(size=(5, 16)))).shape == (5,)

    def test_values_match_forward(self, rng):
        critic = ClassicalCentralCritic(16, (8,), rng)
        states = rng.normal(size=(4, 16))
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_comp1_parameter_budget(self, rng):
        critic = ClassicalCentralCritic(16, (3,), rng)
        assert critic.n_parameters() == 16 * 3 + 3 + 3 + 1  # 55, near 50

    def test_target_sync_via_state_dict(self, rng):
        critic = ClassicalCentralCritic(16, (4,), rng)
        target = ClassicalCentralCritic(16, (4,), np.random.default_rng(99))
        states = rng.normal(size=(3, 16))
        assert not np.allclose(critic.values(states), target.values(states))
        target.load_state_dict(critic.state_dict())
        assert np.allclose(critic.values(states), target.values(states))

    def test_quantum_target_sync(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, np.random.default_rng(1))
        target = QuantumCentralCritic(critic_vqc, np.random.default_rng(2))
        states = rng.uniform(size=(3, 16))
        target.load_state_dict(critic.state_dict())
        assert np.allclose(critic.values(states), target.values(states))
