"""Unit tests for centralised critics."""

import numpy as np
import pytest

from repro.marl.critics import (
    ClassicalCentralCritic,
    QuantumCentralCritic,
    critic_pair_stackable,
    paired_critic_values,
)
from repro.nn.tensor import Tensor
from repro.quantum.backends import StatevectorBackend
from repro.quantum.vqc import build_vqc


@pytest.fixture
def critic_vqc():
    return build_vqc(4, 16, 20, seed=5)


class TestQuantumCentralCritic:
    def test_forward_shape(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic(Tensor(rng.uniform(size=(6, 16))))
        assert values.shape == (6,)

    def test_values_match_forward(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        states = rng.uniform(size=(4, 16))
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_value_scale_bounds_output(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic.values(rng.uniform(size=(8, 16)))
        assert np.all(np.abs(values) <= 10.0 + 1e-9)

    def test_value_scale_is_linear(self, critic_vqc, rng):
        small = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(1), value_scale=1.0
        )
        large = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(1), value_scale=5.0
        )
        states = rng.uniform(size=(3, 16))
        assert np.allclose(5.0 * small.values(states), large.values(states))

    def test_parameter_budget_fixed_head(self, critic_vqc, rng):
        """Fixed scale keeps exactly the ansatz budget (Table II's 50)."""
        critic = QuantumCentralCritic(critic_vqc, rng)
        assert critic.n_parameters() == 20

    def test_trainable_head_adds_parameters(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, trainable_head=True)
        assert critic.n_parameters() == 20 + 4 + 1

    def test_trainable_head_forward(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, trainable_head=True)
        states = rng.uniform(size=(3, 16))
        assert critic(Tensor(states)).shape == (3,)
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_gradients_flow(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng, value_scale=10.0)
        values = critic(Tensor(rng.uniform(size=(2, 16))))
        (values * values).sum().backward()
        assert critic.layer.weights.grad is not None

    def test_1d_state_promoted_in_values(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, rng)
        assert critic.values(rng.uniform(size=16)).shape == (1,)


class TestClassicalCentralCritic:
    def test_forward_shape(self, rng):
        critic = ClassicalCentralCritic(16, (8,), rng)
        assert critic(Tensor(rng.normal(size=(5, 16)))).shape == (5,)

    def test_values_match_forward(self, rng):
        critic = ClassicalCentralCritic(16, (8,), rng)
        states = rng.normal(size=(4, 16))
        assert np.allclose(critic.values(states), critic(Tensor(states)).data)

    def test_comp1_parameter_budget(self, rng):
        critic = ClassicalCentralCritic(16, (3,), rng)
        assert critic.n_parameters() == 16 * 3 + 3 + 3 + 1  # 55, near 50

    def test_target_sync_via_state_dict(self, rng):
        critic = ClassicalCentralCritic(16, (4,), rng)
        target = ClassicalCentralCritic(16, (4,), np.random.default_rng(99))
        states = rng.normal(size=(3, 16))
        assert not np.allclose(critic.values(states), target.values(states))
        target.load_state_dict(critic.state_dict())
        assert np.allclose(critic.values(states), target.values(states))

    def test_quantum_target_sync(self, critic_vqc, rng):
        critic = QuantumCentralCritic(critic_vqc, np.random.default_rng(1))
        target = QuantumCentralCritic(critic_vqc, np.random.default_rng(2))
        states = rng.uniform(size=(3, 16))
        target.load_state_dict(critic.state_dict())
        assert np.allclose(critic.values(states), target.values(states))


class TestPairedCriticValues:
    """The batched online+target forward (one stacked circuit call)."""

    def quantum_pair(self, critic_vqc):
        critic = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(1), value_scale=10.0
        )
        target = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(2), value_scale=10.0
        )
        return critic, target

    def test_quantum_pair_is_stackable(self, critic_vqc):
        critic, target = self.quantum_pair(critic_vqc)
        assert critic_pair_stackable(critic, target)

    def test_structurally_distinct_circuits_also_stack(self, rng):
        """The framework builds online/target from separate build_vqc
        calls with one seed — different objects, same structure."""
        critic = QuantumCentralCritic(
            build_vqc(4, 16, 20, seed=5), np.random.default_rng(1)
        )
        target = QuantumCentralCritic(
            build_vqc(4, 16, 20, seed=5), np.random.default_rng(2)
        )
        assert critic_pair_stackable(critic, target)
        states = rng.uniform(size=(3, 16))
        next_states = rng.uniform(size=(3, 16))
        values, next_values = paired_critic_values(
            critic, target, states, next_states
        )
        assert np.allclose(values.data, critic.values(states), atol=1e-12)
        assert np.allclose(
            next_values, target.values(next_states), atol=1e-12
        )

    def test_non_stackable_pairs_fall_back(self, critic_vqc, rng):
        quantum = QuantumCentralCritic(critic_vqc, np.random.default_rng(1))
        classical = ClassicalCentralCritic(16, (4,), np.random.default_rng(2))
        head = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(3), trainable_head=True
        )
        shots = QuantumCentralCritic(
            critic_vqc,
            np.random.default_rng(4),
            backend=StatevectorBackend(shots=64, rng=np.random.default_rng(5)),
            gradient_method="parameter_shift",
        )
        different = QuantumCentralCritic(
            build_vqc(4, 16, 21, seed=6), np.random.default_rng(6)
        )
        assert not critic_pair_stackable(classical, classical)
        assert not critic_pair_stackable(quantum, classical)
        assert not critic_pair_stackable(quantum, head)
        assert not critic_pair_stackable(quantum, shots)
        assert not critic_pair_stackable(quantum, different)

    def test_fallback_is_bit_identical_to_two_pass(self, rng):
        critic = ClassicalCentralCritic(16, (4,), np.random.default_rng(1))
        target = ClassicalCentralCritic(16, (4,), np.random.default_rng(2))
        states = rng.normal(size=(5, 16))
        next_states = rng.normal(size=(5, 16))
        values, next_values = paired_critic_values(
            critic, target, states, next_states
        )
        assert np.array_equal(values.data, critic(Tensor(states)).data)
        assert np.array_equal(next_values, target.values(next_states))

    def test_stacked_forward_matches_two_pass(self, critic_vqc, rng):
        critic, target = self.quantum_pair(critic_vqc)
        states = rng.uniform(size=(6, 16))
        next_states = rng.uniform(size=(6, 16))
        values, next_values = paired_critic_values(
            critic, target, states, next_states
        )
        assert np.allclose(values.data, critic.values(states), atol=1e-12)
        assert np.allclose(
            next_values, target.values(next_states), atol=1e-12
        )

    def test_stacked_backward_matches_two_pass(self, critic_vqc, rng):
        critic, target = self.quantum_pair(critic_vqc)
        states = rng.uniform(size=(4, 16))
        next_states = rng.uniform(size=(4, 16))
        upstream = rng.normal(size=4)

        values, _ = paired_critic_values(critic, target, states, next_states)
        critic.zero_grad()
        (values * upstream).sum().backward()
        stacked_grad = critic.layer.weights.grad.copy()

        critic.zero_grad()
        (critic(Tensor(states)) * upstream).sum().backward()
        reference_grad = critic.layer.weights.grad.copy()

        assert np.allclose(stacked_grad, reference_grad, atol=1e-12)
        # The frozen target accumulated nothing.
        assert target.layer.weights.grad is None

    def test_mismatched_shapes_rejected(self, critic_vqc, rng):
        critic, target = self.quantum_pair(critic_vqc)
        with pytest.raises(ValueError, match="must match"):
            paired_critic_values(
                critic, target,
                rng.uniform(size=(3, 16)), rng.uniform(size=(4, 16)),
            )
