"""Unit tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.quantum import channels as ch
from repro.quantum import density as dm
from repro.quantum import gates
from repro.quantum import statevector as sv
from repro.quantum.observables import PauliString

from tests.helpers import random_state


class TestConstruction:
    def test_zero_density(self):
        rho = dm.zero_density(2, batch_size=3)
        assert rho.shape == (3, 4, 4)
        assert np.allclose(dm.traces(rho), 1.0)
        assert np.allclose(dm.purity(rho), 1.0)

    def test_from_statevector(self, rng):
        psi = random_state(rng, 2, batch=2)
        rho = dm.from_statevector(psi)
        assert np.allclose(dm.traces(rho), 1.0)
        assert np.allclose(dm.purity(rho), 1.0)


class TestUnitaryEvolution:
    @pytest.mark.parametrize("wires,gate", [
        ((0,), "h"), ((1,), "x"), ((2,), "y"),
        ((0, 1), "cnot"), ((2, 0), "cz"), ((1, 2), "swap"),
    ])
    def test_matches_statevector(self, rng, wires, gate):
        psi = random_state(rng, 3, batch=2)
        rho = dm.from_statevector(psi)
        psi_out = sv.apply_gate(psi, gate, wires, 3)
        rho_out = dm.apply_gate(rho, gate, wires, 3)
        assert np.allclose(rho_out, dm.from_statevector(psi_out), atol=1e-12)

    @pytest.mark.parametrize("wires", [(0,), (1,), (2,)])
    def test_rotation_matches_statevector(self, rng, wires):
        psi = random_state(rng, 3)
        rho = dm.from_statevector(psi)
        psi_out = sv.apply_gate(psi, "ry", wires, 3, 0.77)
        rho_out = dm.apply_gate(rho, "ry", wires, 3, 0.77)
        assert np.allclose(rho_out, dm.from_statevector(psi_out), atol=1e-12)

    def test_batched_angles(self, rng):
        psi = random_state(rng, 2, batch=3)
        rho = dm.from_statevector(psi)
        thetas = np.array([0.2, -0.8, 1.5])
        rho_out = dm.apply_gate(rho, "rx", (1,), 2, thetas)
        psi_out = sv.apply_gate(psi, "rx", (1,), 2, thetas)
        assert np.allclose(rho_out, dm.from_statevector(psi_out), atol=1e-12)

    def test_controlled_rotation_on_swapped_wires(self, rng):
        psi = random_state(rng, 3)
        rho = dm.from_statevector(psi)
        rho_out = dm.apply_gate(rho, "crx", (2, 0), 3, 0.3)
        psi_out = sv.apply_gate(psi, "crx", (2, 0), 3, 0.3)
        assert np.allclose(rho_out, dm.from_statevector(psi_out), atol=1e-12)

    def test_trace_preserved(self, rng):
        psi = random_state(rng, 2, batch=4)
        rho = dm.from_statevector(psi)
        rho = dm.apply_gate(rho, "cry", (0, 1), 2, 1.1)
        assert np.allclose(dm.traces(rho), 1.0)


class TestChannels:
    def test_depolarizing_shrinks_bloch(self):
        # |0><0| under depolarizing(p): <Z> = 1 - p... for the 3-Pauli form
        # <Z> -> (1 - 4p/3)<Z> ... verify against the analytic factor.
        p = 0.3
        rho = dm.zero_density(1)
        rho = dm.apply_channel(rho, ch.depolarizing(p), (0,), 1)
        z = dm.expectation(rho, gates.PAULI_Z)
        assert np.allclose(z, 1.0 - 4.0 * p / 3.0)

    def test_full_depolarizing_is_maximally_mixed(self):
        rho = dm.zero_density(1)
        # p = 3/4 gives the fully contracting channel in the 3-Pauli form.
        rho = dm.apply_channel(rho, ch.depolarizing(0.75), (0,), 1)
        assert np.allclose(rho[0], np.eye(2) / 2.0)

    def test_bit_flip_on_basis_state(self):
        rho = dm.zero_density(1)
        rho = dm.apply_channel(rho, ch.bit_flip(0.25), (0,), 1)
        assert np.allclose(dm.probabilities(rho)[0], [0.75, 0.25])

    def test_amplitude_damping_decays_excited_state(self):
        psi = sv.apply_gate(sv.zero_state(1), "x", (0,), 1)
        rho = dm.from_statevector(psi)
        rho = dm.apply_channel(rho, ch.amplitude_damping(0.4), (0,), 1)
        assert np.allclose(dm.probabilities(rho)[0], [0.4, 0.6])

    def test_phase_damping_kills_coherence(self):
        psi = sv.apply_gate(sv.zero_state(1), "h", (0,), 1)
        rho = dm.from_statevector(psi)
        before = abs(rho[0, 0, 1])
        rho = dm.apply_channel(rho, ch.phase_damping(0.5), (0,), 1)
        after = abs(rho[0, 0, 1])
        assert after < before
        # Populations untouched by pure dephasing.
        assert np.allclose(dm.probabilities(rho)[0], [0.5, 0.5])

    def test_channel_preserves_trace_and_reduces_purity(self, rng):
        psi = random_state(rng, 2, batch=3)
        rho = dm.from_statevector(psi)
        rho = dm.apply_channel(rho, ch.depolarizing(0.2), (1,), 2)
        assert np.allclose(dm.traces(rho), 1.0)
        assert np.all(dm.purity(rho) < 1.0)

    def test_channel_on_wrong_arity(self):
        rho = dm.zero_density(2)
        with pytest.raises(ValueError):
            dm.apply_channel(rho, ch.depolarizing(0.1), (0, 1), 2)


class TestExpectation:
    def test_expectation_matches_statevector(self, rng):
        psi = random_state(rng, 3, batch=2)
        rho = dm.from_statevector(psi)
        obs = PauliString({0: "X", 2: "Z"})
        assert np.allclose(
            dm.expectation(rho, obs.matrix(3)), obs.expectation(psi, 3)
        )

    def test_probabilities_match_statevector(self, rng):
        psi = random_state(rng, 2, batch=2)
        rho = dm.from_statevector(psi)
        assert np.allclose(dm.probabilities(rho), sv.probabilities(psi))
