"""Unit tests for the state encoders (the paper's U_enc block)."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.encoding import (
    AngleEncoding,
    DataReuploadingEncoding,
    MultiLayerAngleEncoding,
)


class TestAngleEncoding:
    def test_one_gate_per_qubit(self):
        circuit = QuantumCircuit(4)
        encoder = AngleEncoding(4)
        next_index = encoder.apply(circuit)
        assert next_index == 4
        assert circuit.n_operations == 4
        assert encoder.n_features == 4
        assert all(op.gate == "rx" for op in circuit.operations)
        assert [op.wires[0] for op in circuit.operations] == [0, 1, 2, 3]

    def test_rotation_choice(self):
        circuit = QuantumCircuit(2)
        AngleEncoding(2, rotation="rz").apply(circuit)
        assert all(op.gate == "rz" for op in circuit.operations)

    def test_scale_propagates(self):
        circuit = QuantumCircuit(2)
        AngleEncoding(2, scale=2.5).apply(circuit)
        assert all(op.param.scale == 2.5 for op in circuit.operations)

    def test_invalid_rotation(self):
        with pytest.raises(ValueError):
            AngleEncoding(2, rotation="h")

    def test_feature_offset(self):
        circuit = QuantumCircuit(2)
        next_index = AngleEncoding(2).apply(circuit, feature_offset=5)
        assert next_index == 7
        assert [op.param.index for op in circuit.operations] == [5, 6]


class TestMultiLayerAngleEncoding:
    def test_fig1_axis_cycle(self):
        """The paper's Fig. 1: Rx(s0..3), Ry(s4..7), Rz(s8..11), Rx(s12..15)."""
        circuit = QuantumCircuit(4)
        encoder = MultiLayerAngleEncoding(4, 16)
        next_index = encoder.apply(circuit)
        assert next_index == 16
        assert encoder.n_layers == 4
        gates_per_layer = [
            {op.gate for op in circuit.operations[i * 4 : (i + 1) * 4]}
            for i in range(4)
        ]
        assert gates_per_layer == [{"rx"}, {"ry"}, {"rz"}, {"rx"}]

    def test_feature_order_matches_fig1(self):
        circuit = QuantumCircuit(4)
        MultiLayerAngleEncoding(4, 16).apply(circuit)
        indices = [op.param.index for op in circuit.operations]
        assert indices == list(range(16))
        wires = [op.wires[0] for op in circuit.operations]
        assert wires == [0, 1, 2, 3] * 4

    def test_single_layer_degenerate(self):
        circuit = QuantumCircuit(4)
        encoder = MultiLayerAngleEncoding(4, 4)
        encoder.apply(circuit)
        assert encoder.n_layers == 1
        assert all(op.gate == "rx" for op in circuit.operations)

    def test_partial_final_layer(self):
        circuit = QuantumCircuit(4)
        encoder = MultiLayerAngleEncoding(4, 10)
        next_index = encoder.apply(circuit)
        assert next_index == 10
        assert encoder.n_layers == 3
        # Final (partial) layer: two Rz gates on wires 0 and 1.
        tail = circuit.operations[8:]
        assert [op.gate for op in tail] == ["rz", "rz"]
        assert [op.wires[0] for op in tail] == [0, 1]

    def test_zero_features_rejected(self):
        with pytest.raises(ValueError):
            MultiLayerAngleEncoding(4, 0)

    def test_compression_ratio(self):
        """16 features on 4 qubits: the n(qubit)*n(agent)/4 note of Fig. 2."""
        encoder = MultiLayerAngleEncoding(4, 16)
        assert encoder.n_features // encoder.n_qubits == 4


class TestDataReuploadingEncoding:
    def test_reuses_same_features(self):
        circuit = QuantumCircuit(2)
        inner = AngleEncoding(2)
        encoder = DataReuploadingEncoding(inner, n_repeats=3)
        offset = 0
        for _ in range(encoder.n_repeats):
            encoder.apply(circuit, 0)
        indices = [op.param.index for op in circuit.operations]
        assert indices == [0, 1, 0, 1, 0, 1]
        assert encoder.n_features == 2

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            DataReuploadingEncoding(AngleEncoding(2), 0)
