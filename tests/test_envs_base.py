"""Unit tests for the multi-agent environment API."""

import numpy as np
import pytest

from repro.envs.base import Discrete, FeatureSpace, MultiAgentEnv, StepResult


class TestDiscrete:
    def test_sample_in_range(self, rng):
        space = Discrete(4)
        samples = {space.sample(rng) for _ in range(200)}
        assert samples == {0, 1, 2, 3}

    def test_contains(self):
        space = Discrete(3)
        assert space.contains(0)
        assert space.contains(np.int64(2))
        assert not space.contains(3)
        assert not space.contains(-1)
        assert not space.contains(1.5)

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_repr(self):
        assert repr(Discrete(4)) == "Discrete(4)"


class TestFeatureSpace:
    def test_contains(self):
        space = FeatureSpace(0.0, 1.0, 3)
        assert space.contains(np.array([0.0, 0.5, 1.0]))
        assert not space.contains(np.array([0.0, 0.5]))
        assert not space.contains(np.array([0.0, 0.5, 1.2]))

    def test_tolerance(self):
        space = FeatureSpace(0.0, 1.0, 1)
        assert space.contains(np.array([1.0 + 1e-12]))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FeatureSpace(1.0, 0.0, 2)


class TestStepResult:
    def test_tuple_unpacking(self):
        result = StepResult([np.zeros(2)], np.zeros(2), -1.0, False, {"k": 1})
        obs, state, reward, done, info = result
        assert reward == -1.0
        assert not done
        assert info == {"k": 1}

    def test_attributes(self):
        result = StepResult([], np.zeros(1), 0, True, {})
        assert result.done is True
        assert isinstance(result.reward, float)


class TestMultiAgentEnv:
    class _Stub(MultiAgentEnv):
        n_agents = 2
        action_space = Discrete(3)
        observation_space = FeatureSpace(0, 1, 2)
        state_size = 4

    def test_validate_actions_count(self):
        env = self._Stub()
        with pytest.raises(ValueError, match="expected 2 actions"):
            env.validate_actions([0])

    def test_validate_actions_range(self):
        env = self._Stub()
        with pytest.raises(ValueError, match="agent 1"):
            env.validate_actions([0, 7])

    def test_derived_properties(self):
        env = self._Stub()
        assert env.observation_size == 2
        assert env.n_actions == 3

    def test_abstract_methods(self):
        env = self._Stub()
        with pytest.raises(NotImplementedError):
            env.reset()
        with pytest.raises(NotImplementedError):
            env.step([0, 0])
