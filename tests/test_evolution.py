"""Tests for the evolutionary-strategies training subsystem.

Covers the ES math against closed forms, the population-to-row multiplexing
(stacked per-sample-weight path vs the per-member reference loop), the
single-circuit-call-per-step contract, the ``population=1, sigma=0``
unperturbed-evaluation mode, the four-way cross-engine bit-identity chain
(per-member loop / stacked / sharded-pipe / sharded-shm) on both
environment families including crash-restart mid-generation, and a learning
smoke run.
"""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import make_vector_env
from repro.marl.evolution import (
    ESTrainer,
    PopulationActorGroup,
    PopulationRolloutCollector,
    flat_team_vector,
    load_team_vector,
)
from repro.marl.evolution import es
from repro.marl.frameworks import _quantum_actor_group, build_framework
from repro.marl.rollout import VectorRolloutCollector
from repro.quantum.backends import StatevectorBackend
from repro.seeding import SeedSequenceFactory

from helpers import (
    ES_ENGINES,
    OFFLOAD_ENV_KINDS,
    assert_es_cross_engine_equivalence,
    assert_es_runs_equal,
    make_classical_team,
    make_es_trainer,
    make_offload_env,
    run_es_generations,
)


# -- small quantum fixtures ----------------------------------------------------

SMALL_ENV = SingleHopConfig(episode_limit=4, n_clouds=1, n_agents=2)
SMALL_VQC = VQCConfig(n_qubits=2, n_variational_gates=8)


def quantum_team(seed=5):
    """A tiny 2-qubit quantum actor team for the stacked-path tests."""
    return _quantum_actor_group(
        SMALL_ENV, SMALL_VQC, SeedSequenceFactory(seed), StatevectorBackend
    )


def quantum_es_trainer(seed=3, **overrides):
    env = SingleHopOffloadEnv(SMALL_ENV, rng=np.random.default_rng(seed))
    actors = quantum_team(seed + 2)
    settings = {
        "trainer": "es",
        "es_population": 4,
        "es_sigma": 0.1,
        "es_lr": 0.1,
        "episodes_per_epoch": 2,
    }
    settings.update(overrides)
    config = TrainingConfig(**settings)
    return ESTrainer(env, actors, config, np.random.default_rng(seed))


# -- ES math -------------------------------------------------------------------

class TestESMath:
    def test_centered_ranks_known_values(self):
        shaped = es.centered_ranks([3.0, -1.0, 10.0])
        assert np.allclose(shaped, [0.0, -0.5, 0.5])
        assert shaped.sum() == 0.0

    def test_centered_ranks_range_and_single_member(self):
        shaped = es.centered_ranks(np.arange(7.0))
        assert shaped.min() == -0.5 and shaped.max() == 0.5
        assert np.array_equal(es.centered_ranks([42.0]), [0.0])

    def test_population_noise_is_antithetic(self):
        noise = es.population_noise((11, 22), population=4, dim=6)
        assert noise.shape == (4, 6)
        assert np.array_equal(noise[1], -noise[0])
        assert np.array_equal(noise[3], -noise[2])
        assert not np.array_equal(noise[0], noise[2])

    def test_odd_population_keeps_unpaired_positive_member(self):
        noise = es.population_noise((11, 22), population=3, dim=6)
        assert np.array_equal(noise[2], es.pair_noise(22, 6))

    def test_noise_is_seed_deterministic(self):
        assert np.array_equal(es.pair_noise(99, 8), es.pair_noise(99, 8))
        a = es.perturb_population(np.zeros(5), (7, 8), 0.3, 4)
        b = es.perturb_population(np.zeros(5), (7, 8), 0.3, 4)
        assert np.array_equal(a, b)

    def test_pair_seed_count(self):
        assert es.n_pairs(1) == 1
        assert es.n_pairs(4) == 2
        assert es.n_pairs(5) == 3
        rng = np.random.default_rng(0)
        assert len(es.draw_generation_seeds(rng, 5)) == 3

    def test_sigma_zero_population_is_exact_copies(self):
        base = np.random.default_rng(0).normal(size=9)
        members = es.perturb_population(base, (), 0.0, 3)
        assert members.shape == (3, 9)
        assert all(np.array_equal(m, base) for m in members)

    def test_es_gradient_closed_form(self):
        # One pair, population 2: g = (u0 - u1) * eps / (2 sigma).
        seeds = (5,)
        eps = es.pair_noise(5, 4)
        shaped = np.array([0.5, -0.5])
        grad = es.es_gradient(shaped, seeds, sigma=0.2, population=2, dim=4)
        assert np.allclose(grad, (0.5 - (-0.5)) * eps / (2 * 0.2))

    def test_optimizer_step_matches_manual_update(self):
        base = np.random.default_rng(1).normal(size=4)
        opt = es.ESOptimizer(lr=0.5, sigma=0.2, weight_decay=0.1)
        fitness = np.array([1.0, 3.0])
        seeds = (5,)
        new_base, info = opt.step(base, fitness, seeds)
        shaped = es.centered_ranks(fitness)
        grad = es.es_gradient(shaped, seeds, 0.2, 2, 4)
        assert np.allclose(new_base, base + 0.5 * (grad - 0.1 * base))
        assert info["grad_norm"] == pytest.approx(np.linalg.norm(grad))
        assert opt.generation == 1

    def test_optimizer_degenerate_generations_leave_base_untouched(self):
        base = np.random.default_rng(2).normal(size=4)
        # Single member: rank shaping is all-zero, no update (and no decay).
        new_base, info = es.ESOptimizer(lr=0.5, sigma=0.2).step(
            base, np.array([1.0]), (3,)
        )
        assert np.array_equal(new_base, base)
        assert info["grad_norm"] == 0.0
        # sigma == 0: evaluation mode.
        new_base, _ = es.ESOptimizer(lr=0.5, sigma=0.0).step(
            base, np.array([1.0, 2.0]), ()
        )
        assert np.array_equal(new_base, base)

    def test_validation(self):
        with pytest.raises(ValueError):
            es.n_pairs(0)
        with pytest.raises(ValueError):
            es.population_noise((1,), population=4, dim=3)  # needs 2 seeds
        with pytest.raises(ValueError):
            es.es_gradient([0.0, 0.0], (1,), sigma=0.0, population=2, dim=3)
        with pytest.raises(ValueError):
            es.ESOptimizer(lr=0.0, sigma=0.1)


# -- flat team vectors and the population group --------------------------------

class TestPopulationActorGroup:
    def test_flat_vector_round_trip(self):
        env = make_offload_env("single_hop", 0)
        team = make_classical_team(env, 1)
        vector = flat_team_vector(team)
        assert vector.ndim == 1 and vector.size == team.n_parameters()
        perturbed = vector + 0.25
        load_team_vector(team, perturbed)
        assert np.array_equal(flat_team_vector(team), perturbed)
        with pytest.raises(ValueError):
            load_team_vector(team, perturbed[:-1])

    def test_row_to_member_mapping(self):
        team = quantum_team()
        vectors = np.tile(flat_team_vector(team), (3, 1))
        group = PopulationActorGroup(team, vectors)
        assert np.array_equal(group.members_for_rows(6), [0, 1, 2, 0, 1, 2])
        group.set_row_offset(4)
        assert np.array_equal(group.members_for_rows(3), [1, 2, 0])

    def test_act_is_rejected(self):
        group = PopulationActorGroup(quantum_team())
        with pytest.raises(RuntimeError, match="act_batch"):
            group.act([np.zeros(3)], np.random.default_rng(0))

    def test_stacked_matches_member_loop_on_quantum_team(self):
        """The one-circuit-call path equals the per-member oracle loop."""
        team = quantum_team()
        rng = np.random.default_rng(7)
        base = flat_team_vector(team)
        vectors = base[None, :] + 0.1 * rng.normal(size=(3, base.size))
        observations = rng.uniform(0.0, 1.0, size=(6, team.n_agents, 3))

        stacked = PopulationActorGroup(team, vectors, stacked=True)
        loop = PopulationActorGroup(team, vectors, stacked=False)
        probs_stacked = stacked.batch_probabilities(observations)
        probs_loop = loop.batch_probabilities(observations)
        assert probs_stacked.shape == (6, team.n_agents, SMALL_ENV.n_actions)
        assert np.array_equal(probs_stacked, probs_loop)
        # The loop restores the template's weights.
        assert np.array_equal(flat_team_vector(team), base)

    def test_shard_offset_slices_the_global_evaluation(self):
        """A shard's probabilities equal its rows of the full evaluation."""
        team = quantum_team()
        rng = np.random.default_rng(8)
        base = flat_team_vector(team)
        vectors = base[None, :] + 0.1 * rng.normal(size=(4, base.size))
        observations = rng.uniform(0.0, 1.0, size=(8, team.n_agents, 3))

        full = PopulationActorGroup(team, vectors)
        reference = full.batch_probabilities(observations)
        for lo, hi in ((0, 3), (3, 6), (6, 8)):
            shard = PopulationActorGroup(team, vectors, row_offset=lo)
            probs = shard.batch_probabilities(observations[lo:hi])
            assert np.array_equal(probs, reference[lo:hi])

    def test_load_broadcast_reconstructs_the_generation(self):
        team = quantum_team()
        base = flat_team_vector(team)
        seeds = (13, 14)
        group = PopulationActorGroup(team)
        group.load_broadcast(
            {"base": base, "seeds": seeds, "sigma": 0.2, "population": 4}
        )
        assert np.array_equal(
            group.member_vectors, es.perturb_population(base, seeds, 0.2, 4)
        )

    def test_classical_team_uses_member_loop(self):
        env = make_offload_env("single_hop", 0)
        team = make_classical_team(env, 1)
        base = flat_team_vector(team)
        vectors = np.stack([base, base + 0.5])
        group = PopulationActorGroup(team, vectors)
        assert not group._quantum_stackable
        observations = np.random.default_rng(2).uniform(
            0.0, 1.0, size=(4, team.n_agents, env.observation_size)
        )
        probs = group.batch_probabilities(observations)
        # Rows of member 0 match the template's own evaluation.
        expected = team.batch_probabilities(observations[0::2])
        assert np.array_equal(probs[0::2], expected)


class TestSingleCircuitCallPerStep:
    def test_one_stacked_evaluation_per_env_step(self, monkeypatch):
        """A whole generation runs one circuit evaluation per env step —
        no per-member python loop over circuit calls."""
        trainer = quantum_es_trainer(rollout_mode="vector")
        compiled = trainer.actors._compiled
        calls = []
        original = compiled.run

        def counting_run(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(compiled, "run", counting_run)
        trainer.train_epoch()
        # episodes_per_epoch=2 per member over 1 env row per member
        # -> 2 lockstep rounds of episode_limit steps each.
        expected_steps = 2 * SMALL_ENV.episode_limit
        assert len(calls) == expected_steps

    def test_member_loop_pays_one_call_per_member_per_step(self, monkeypatch):
        trainer = quantum_es_trainer(rollout_mode="serial")
        compiled = trainer.actors._compiled
        calls = []
        original = compiled.run

        def counting_run(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(compiled, "run", counting_run)
        trainer.train_epoch()
        expected_steps = 2 * SMALL_ENV.episode_limit
        assert len(calls) == expected_steps * trainer.population


# -- the unperturbed evaluation mode -------------------------------------------

class TestEvaluationMode:
    def test_population_one_sigma_zero_reproduces_plain_evaluation(self):
        """population=1, sigma=0 is bit-identical to plain unperturbed
        vectorized collection of the same team — episodes, stats, and both
        RNG streams."""
        seed = 3
        trainer = quantum_es_trainer(
            seed=seed, es_population=1, es_sigma=0.0,
            episodes_per_epoch=4, rollout_envs=2,
        )
        theta0 = trainer.base_vector.copy()
        records = [trainer.train_epoch() for _ in range(2)]
        assert np.array_equal(trainer.base_vector, theta0)

        env = SingleHopOffloadEnv(SMALL_ENV, rng=np.random.default_rng(seed))
        team = quantum_team(seed + 2)
        rng = np.random.default_rng(seed)
        collector = VectorRolloutCollector(make_vector_env(env, 2), team)
        for record in records:
            _, stats = collector.collect(4, rng)
            assert record["total_reward"] == float(
                np.mean([s["total_reward"] for s in stats])
            )
            assert record["mean_queue"] == float(
                np.mean([s["mean_queue"] for s in stats])
            )
            assert record["grad_norm"] == 0.0
        assert trainer.rng.bit_generator.state == rng.bit_generator.state
        assert (
            trainer.env.rng.bit_generator.state == env.rng.bit_generator.state
        )


# -- cross-engine bit-identity (the ES axis of the unified harness) ------------

class TestESCrossEngineEquivalence:
    @pytest.mark.parametrize("env_kind", OFFLOAD_ENV_KINDS)
    def test_four_way_chain(self, env_kind):
        """serial-loop == stacked == sharded-pipe == sharded-shm, on both
        environment families, including RNG stream positions."""
        assert_es_cross_engine_equivalence(env_kind, ES_ENGINES)

    def test_odd_population_and_worker_count(self):
        assert_es_cross_engine_equivalence(
            "single_hop", ("stacked", "sharded-pipe"),
            population=5, n_workers=3,
        )

    def test_multiple_env_copies_per_member(self):
        assert_es_cross_engine_equivalence(
            "single_hop", ES_ENGINES, population=2, n_envs=2,
        )

    def test_quantum_chain(self):
        """The stacked weight math against the per-member oracle on a real
        quantum team, in-process and sharded."""

        def run(mode, workers=1, transport="auto"):
            trainer = quantum_es_trainer(
                rollout_mode=mode, rollout_workers=workers,
                rollout_transport=transport,
            )
            try:
                records = [trainer.train_epoch() for _ in range(2)]
                return (
                    records,
                    trainer.base_vector.copy(),
                    trainer.rng.bit_generator.state,
                )
            finally:
                trainer.close()

        reference = run("serial")
        for args in (("vector",), ("sharded", 2, "pipe")):
            other = run(*args)
            assert reference[0] == other[0]
            assert np.array_equal(reference[1], other[1])
            assert reference[2] == other[2]


class TestESCrashRecovery:
    @pytest.mark.parametrize("transport", ("pipe", "shm"))
    def test_worker_crash_mid_generation_is_bit_identical(self, transport):
        """Killing a worker mid-generation (command received, then death)
        restarts it from its checkpoint and replays the generation
        broadcast — the run stays bit-identical to an undisturbed one."""
        reference = run_es_generations(
            "single_hop", f"sharded-{transport}", n_generations=3
        )

        trainer = make_es_trainer("single_hop", f"sharded-{transport}")
        try:
            records = [trainer.train_epoch()]
            collector = trainer.sharded_collector()
            collector.debug_crash_worker(0, during_next_collect=True)
            records.append(trainer.train_epoch())
            assert collector.total_restarts == 1
            records.append(trainer.train_epoch())
            from helpers import ESEngineRun

            crashed = ESEngineRun(
                engine=f"sharded-{transport}-crashed",
                records=records,
                base_vector=trainer.base_vector.copy(),
                action_rng_state=trainer.rng.bit_generator.state,
                env_rng_state=trainer.env.rng.bit_generator.state,
            )
        finally:
            trainer.close()
        assert_es_runs_equal(reference, crashed)

    def test_worker_killed_between_generations(self):
        reference = run_es_generations(
            "single_hop", "sharded-pipe", n_generations=2
        )
        trainer = make_es_trainer("single_hop", "sharded-pipe")
        try:
            records = [trainer.train_epoch()]
            trainer.sharded_collector().debug_crash_worker(0)
            records.append(trainer.train_epoch())
            assert trainer.sharded_collector().total_restarts == 1
            assert records == reference.records
            assert np.array_equal(reference.base_vector, trainer.base_vector)
        finally:
            trainer.close()


# -- trainer API ---------------------------------------------------------------

class TestESTrainer:
    def test_rejects_mapg_config(self):
        env = make_offload_env("single_hop", 0)
        team = make_classical_team(env, 1)
        with pytest.raises(ValueError, match="trainer='es'"):
            ESTrainer(env, team, TrainingConfig(), np.random.default_rng(0))

    def test_member_fitness_mapping(self):
        trainer = make_es_trainer("single_hop", "stacked", population=2)
        stats = [{"total_reward": r} for r in (1.0, 2.0, 3.0, 4.0)]
        fitness = trainer.member_fitness(stats)
        # 2 rows (one per member), episodes round-robin rows: member 0 got
        # rewards 1 and 3, member 1 got 2 and 4.
        assert np.array_equal(fitness, [2.0, 3.0])
        trainer.close()

    def test_history_and_callback(self):
        trainer = make_es_trainer("single_hop", "stacked")
        seen = []

        def callback(record):
            seen.append(record["epoch"])
            if len(seen) == 2:
                raise StopIteration

        history = trainer.train(n_epochs=5, callback=callback)
        assert seen == [1, 2]
        assert history.n_epochs == 2
        assert set(history.keys()) >= {
            "epoch", "total_reward", "fitness_mean", "fitness_max",
            "fitness_std", "grad_norm",
        }
        trainer.close()

    def test_update_is_applied_to_live_actors(self):
        trainer = make_es_trainer("single_hop", "stacked")
        before = flat_team_vector(trainer.actors).copy()
        trainer.train_epoch()
        after = flat_team_vector(trainer.actors)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, trainer.base_vector)
        trainer.close()

    def test_evaluate_and_close_idempotent(self):
        trainer = make_es_trainer("single_hop", "sharded-pipe")
        trainer.train_epoch()
        stats = trainer.evaluate(n_episodes=2)
        assert set(stats) == {
            "total_reward", "length", "mean_queue", "empty_ratio",
            "overflow_ratio",
        }
        trainer.close()
        trainer.close()

    def test_collector_validation(self):
        trainer = quantum_es_trainer()
        group = trainer._population_group
        env = SingleHopOffloadEnv(SMALL_ENV, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="multiple"):
            PopulationRolloutCollector(env, group, n_envs=3, n_workers=1)
        with pytest.raises(TypeError, match="PopulationActorGroup"):
            PopulationRolloutCollector(
                env, trainer.actors, n_envs=4, n_workers=1
            )
        collector = PopulationRolloutCollector(
            env, group, n_envs=4, n_workers=2, transport="pipe"
        )
        with pytest.raises(RuntimeError, match="set_generation"):
            collector.collect(4, np.random.default_rng(0))
        collector.close()


class TestFrameworkIntegration:
    def test_build_framework_es_quantum(self):
        framework = build_framework(
            "proposed",
            seed=5,
            env_config=SingleHopConfig(episode_limit=4),
            vqc_config=VQCConfig(n_variational_gates=10),
            train_config=TrainingConfig(
                trainer="es", es_population=2, episodes_per_epoch=1,
            ),
        )
        with framework:
            assert isinstance(framework.trainer, ESTrainer)
            assert framework.metadata["critic_parameters"] == 0
            assert framework.metadata["actor_parameters"] == 10
            record = framework.trainer.train_epoch()
            assert "fitness_mean" in record
            stats = framework.evaluate(n_episodes=1)
            assert "total_reward" in stats

    def test_build_framework_es_overrides(self):
        framework = build_framework(
            "comp2",
            seed=5,
            env_config=SingleHopConfig(episode_limit=4),
            trainer="es",
            es_population=3,
            es_sigma=0.2,
            es_lr=0.3,
        )
        with framework:
            trainer = framework.trainer
            assert isinstance(trainer, ESTrainer)
            assert trainer.population == 3
            assert trainer.sigma == 0.2
            assert trainer.optimizer.lr == 0.3
            trainer.train_epoch()

    def test_random_framework_ignores_trainer_knob(self):
        framework = build_framework("random", trainer="es", es_population=2)
        assert framework.trainer is None


class TestESLearning:
    @pytest.mark.slow
    def test_mean_return_improves_on_single_hop(self):
        """The acceptance smoke: ES mean return improves across
        generations on SingleHop (quantum team, stacked evaluation)."""
        framework = build_framework(
            "proposed",
            seed=7,
            env_config=SingleHopConfig(episode_limit=30),
            vqc_config=VQCConfig(critic_value_scale=10.0),
            train_config=TrainingConfig(
                trainer="es",
                episodes_per_epoch=2,
                es_population=8,
                es_sigma=0.15,
                es_lr=0.12,
            ),
        )
        with framework:
            history = framework.train(n_epochs=6)
        rewards = history.series("total_reward")
        assert np.mean(rewards[-2:]) > np.mean(rewards[:2])


class TestRaggedRejection:
    """ES fitness attribution is positional — ragged envs are rejected."""

    def test_ragged_env_rejected_up_front(self):
        env = make_offload_env("single_hop_ragged", 0)
        team = make_classical_team(env, 1)
        config = TrainingConfig(trainer="es")
        with pytest.raises(ValueError, match="fixed-length"):
            ESTrainer(env, team, config, np.random.default_rng(0))

    def test_fixed_env_still_accepted(self):
        env = make_offload_env("single_hop", 0)
        team = make_classical_team(env, 1)
        config = TrainingConfig(trainer="es")
        trainer = ESTrainer(env, team, config, np.random.default_rng(0))
        trainer.close()
