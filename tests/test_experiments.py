"""Unit tests for the experiment harness (smoke-scale configurations)."""

import json
import os

import numpy as np
import pytest

from repro.experiments import io as xio
from repro.experiments.ablations import (
    run_encoding_attenuation,
    run_gradient_methods,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.fig3 import (
    FIG3_METRICS,
    PRESETS,
    format_fig3_report,
    run_fig3,
)
from repro.experiments.fig4 import format_fig4_report, run_fig4
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.section4d import (
    PAPER_REFERENCE,
    format_section4d_report,
    run_section4d,
)


@pytest.fixture(scope="module")
def fig3_result():
    """One shared smoke-scale Fig. 3 run for the module's tests."""
    return run_fig3(preset="smoke", seed=5)


class TestIo:
    def test_json_roundtrip(self, tmp_path):
        doc = {"a": np.float64(1.5), "b": np.arange(3), "c": {"d": np.int64(2)}}
        path = xio.save_json(doc, str(tmp_path / "x.json"))
        loaded = xio.load_json(path)
        assert loaded == {"a": 1.5, "b": [0, 1, 2], "c": {"d": 2}}

    def test_save_csv(self, tmp_path):
        path = xio.save_csv(
            {"epoch": [1, 2], "reward": [-1.0, -2.0]}, str(tmp_path / "x.csv")
        )
        lines = open(path).read().strip().splitlines()
        assert lines == ["epoch,reward", "1,-1.0", "2,-2.0"]

    def test_save_csv_unequal_columns(self, tmp_path):
        with pytest.raises(ValueError):
            xio.save_csv({"a": [1], "b": [1, 2]}, str(tmp_path / "x.csv"))

    def test_results_dir_creates(self, tmp_path):
        target = str(tmp_path / "nested" / "results")
        assert xio.results_dir(target) == target
        assert os.path.isdir(target)

    def test_timestamp_format(self):
        stamp = xio.timestamp()
        assert len(stamp) == 16 and stamp.endswith("Z")


class TestFig3:
    def test_presets_exist(self):
        assert {"smoke", "quick", "medium", "full"} <= set(PRESETS)

    def test_result_document(self, fig3_result):
        assert fig3_result["experiment"] == "fig3"
        assert set(fig3_result["series"]) == {
            "proposed", "comp1", "comp2", "comp3",
        }
        for name, series in fig3_result["series"].items():
            for metric in FIG3_METRICS:
                assert len(series[metric]) == fig3_result["n_epochs"]

    def test_random_walk_negative(self, fig3_result):
        assert fig3_result["random_walk_return"] < 0.0

    def test_summaries_have_achievability(self, fig3_result):
        for summary in fig3_result["summaries"].values():
            assert "achievability" in summary

    def test_parameter_budgets_in_result(self, fig3_result):
        assert fig3_result["parameters"]["proposed"]["actor_parameters"] == 50
        assert fig3_result["parameters"]["comp3"]["total_parameters"] > 40_000

    def test_report_formatting(self, fig3_result):
        report = format_fig3_report(fig3_result)
        assert "proposed" in report
        assert "random-walk" in report

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            run_fig3(preset="gigantic")

    def test_callback_invoked(self):
        seen = []
        run_fig3(
            preset="smoke",
            seed=3,
            frameworks=("comp2",),
            callback=lambda name, rec: seen.append((name, rec["epoch"])),
        )
        assert len(seen) == PRESETS["smoke"][0]


class TestSection4d:
    def test_reuses_fig3_result(self, fig3_result):
        result = run_section4d(fig3_result=fig3_result)
        assert result["summaries"] is fig3_result["summaries"]
        assert set(result["orders"]) == {
            "empty_ratio_order_high_to_low",
            "overflow_order_low_to_high",
            "achievability_order_high_to_low",
        }

    def test_paper_reference_structure(self):
        assert PAPER_REFERENCE["total_reward"]["random"] == -33.2
        assert PAPER_REFERENCE["achievability"]["proposed"] == 0.909

    def test_report(self, fig3_result):
        report = format_section4d_report(run_section4d(fig3_result=fig3_result))
        assert "paper vs measured" in report
        assert "proposed" in report


class TestFig4:
    def test_smoke_run(self):
        result = run_fig4(train_epochs=1, n_steps=3, seed=2, episode_limit=6)
        assert result["n_steps"] == 3
        step = result["steps"][0]
        assert len(step["edge_levels"]) == 4
        assert len(step["cloud_levels"]) == 2
        assert np.asarray(step["heatmap_magnitude"]).shape == (4, 4)
        # Demonstrated actions decode to (destination, amount).
        assert all(0 <= d < 2 for d in step["destinations"])
        assert all(p in (0.1, 0.2) for p in step["amounts"])

    def test_report_text(self):
        result = run_fig4(train_epochs=1, n_steps=2, seed=2, episode_limit=6)
        report = format_fig4_report(result)
        assert "t= 1" in report
        assert "magnitude:" in report

    def test_report_ansi(self):
        result = run_fig4(train_epochs=1, n_steps=1, seed=2, episode_limit=6)
        assert "\x1b[48;2;" in format_fig4_report(result, ansi=True)


class TestAblations:
    def test_encoding_attenuation_smoke(self):
        result = run_encoding_attenuation(
            n_features=4, n_weights=8, noise_levels=(0.0, 0.05), n_states=8
        )
        assert set(result["signal_std"]) == {"compact", "naive"}
        assert result["qubits"] == {"compact": 2, "naive": 4}
        for values in result["signal_std"].values():
            assert len(values) == 2
            assert values[1] < values[0]  # noise attenuates signal

    def test_gradient_methods_smoke(self):
        result = run_gradient_methods(
            n_qubits=2, n_features=2, n_weights=6, batch=2, repeats=1
        )
        deviations = result["max_weight_grad_deviation_vs_adjoint"]
        assert deviations["parameter_shift"] < 1e-8
        assert deviations["finite_diff"] < 1e-4


class TestRegistry:
    def test_all_experiments_registered(self):
        assert {
            "fig3", "fig4", "section4d", "es-train", "serving-load",
            "ablation-encoding", "ablation-gradients", "ablation-noise",
            "ablation-shots", "ablation-budget", "ablation-template",
            "ablation-plateau",
        } == set(EXPERIMENTS)

    def test_get_experiment(self):
        spec = get_experiment("fig3")
        assert spec.paper_ref.startswith("Fig. 3")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig9")

    def test_run_experiment_dispatch(self):
        result = run_experiment(
            "ablation-gradients", n_qubits=2, n_features=2, n_weights=4,
            batch=1, repeats=1,
        )
        assert result["experiment"] == "ablation_gradient_methods"


class TestCli:
    def test_parser(self):
        args = build_parser().parse_args(["fig3", "--preset", "smoke"])
        assert args.experiment == "fig3"
        assert args.preset == "smoke"

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "fig4" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_smoke_run_with_output(self, tmp_path, capsys):
        code = main(["fig3", "--preset", "smoke", "--seed", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 3 reproduction" in out
        written = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(written) == 1
        doc = json.load(open(os.path.join(tmp_path, written[0])))
        assert doc["experiment"] == "fig3"
