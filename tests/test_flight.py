"""Tests for the crash flight recorder (``repro.obs.flight``).

The contracts under test:

- both ring backends (GIL-atomic memory deque, mmap fixed-slot file)
  drop the oldest events beyond capacity and replay in order;
- file-ring recovery survives torn and oversized slots, dropping only
  the damaged events — the torn-write protection a SIGKILL relies on;
- dumping is gated on a configured directory and the enable flag, so
  crash-heavy suites don't litter postmortems;
- a worker killed mid-collect leaves a postmortem carrying its recovered
  file ring (the commands it was serving when it died), over both
  transports, for both the rollout pool and the serving shards;
- the excepthook dumps once, installs idempotently, and defers to the
  prior hook.
"""

import json
import sys

import numpy as np
import pytest

from repro import obs
from repro.config import SingleHopConfig
from repro.marl.parallel import ShardedRolloutCollector
from repro.obs import flight
from repro.obs import trace as obs_trace
from repro.serving import ShardedPolicyEngine
from repro.serving.engine import FrameworkSpec

from tests.helpers import make_classical_team, make_offload_env

TRANSPORTS = ("pipe", "shm")
SMALL_RING = {"shm_slot_bytes": 256, "shm_slots": 8}


@pytest.fixture(autouse=True)
def clean_flight_state():
    """Pristine recorder/trace/registry state and the original excepthook."""
    previous = obs.set_enabled(False)
    prior_hook = sys.excepthook
    prior_dir = flight.set_dump_dir(None)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    flight.reset()
    yield
    sys.excepthook = prior_hook
    obs.set_enabled(previous)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    flight.reset()
    flight.set_dump_dir(prior_dir)


# -- ring semantics -----------------------------------------------------------


class TestRingSemantics:
    def test_memory_ring_drops_oldest(self):
        ring = flight.FlightRecorder(capacity=4)
        for i in range(10):
            ring.record({"i": i})
        assert [e["i"] for e in ring.events()] == [6, 7, 8, 9]

    def test_file_ring_drops_oldest_and_recovers(self, tmp_path):
        path = str(tmp_path / "w0.ring")
        ring = flight.FlightRecorder(capacity=4, path=path)
        for i in range(11):
            ring.record({"i": i})
        assert [e["i"] for e in ring.events()] == [7, 8, 9, 10]
        # Cold recovery — what the parent does after SIGKILLing the owner.
        assert [e["i"] for e in flight.read_file(path)] == [7, 8, 9, 10]
        ring.close()

    def test_file_ring_recovery_drops_torn_slot_only(self, tmp_path):
        path = str(tmp_path / "torn.ring")
        ring = flight.FlightRecorder(capacity=4, path=path,
                                     slot_bytes=128)
        for i in range(4):
            ring.record({"i": i})
        ring.close()
        # Corrupt the JSON payload of slot 1 (event i=1) while leaving its
        # live sequence number intact — a mid-write kill frozen on disk.
        offset = (flight._HEADER.size + 1 * 128
                  + flight._SLOT_HEADER.size)
        with open(path, "r+b") as f:
            f.seek(offset)
            f.write(b"\xff\xfe garbage")
        assert [e["i"] for e in flight.read_file(path)] == [0, 2, 3]

    def test_file_ring_truncated_oversized_payload_is_dropped(self, tmp_path):
        path = str(tmp_path / "fat.ring")
        ring = flight.FlightRecorder(capacity=4, path=path, slot_bytes=64)
        ring.record({"i": 0})
        ring.record({"i": 1, "blob": "x" * 500})  # exceeds the slot
        ring.record({"i": 2})
        got = [e["i"] for e in ring.events()]
        assert got == [0, 2]  # truncated JSON recovered as torn, not wrong
        ring.close()

    def test_read_file_rejects_missing_or_foreign_files(self, tmp_path):
        assert flight.read_file(str(tmp_path / "absent.ring")) == []
        junk = tmp_path / "junk.ring"
        junk.write_bytes(b"not a ring")
        assert flight.read_file(str(junk)) == []
        bad_magic = tmp_path / "bad.ring"
        bad_magic.write_bytes(
            flight._HEADER.pack(b"NOPE", 1, 1, 64) + b"\x00" * 64
        )
        assert flight.read_file(str(bad_magic)) == []

    def test_attach_file_carries_memory_events_over(self, tmp_path):
        flight.record("early", note="before the ring path was known")
        ring_path = str(tmp_path / "late.ring")
        flight.attach_file(ring_path)
        flight.record("late")
        kinds = [e["kind"] for e in flight.recorder().events()]
        assert kinds == ["early", "late"]
        # And the carried event is already on disk for a recoverer.
        assert [e["kind"] for e in flight.read_file(ring_path)] == \
            ["early", "late"]


# -- module API ---------------------------------------------------------------


class TestModuleApi:
    def test_record_stamps_time_pid_tid(self):
        flight.record("probe", detail=7)
        (event,) = flight.recorder().events()
        assert event["kind"] == "probe"
        assert event["detail"] == 7
        import os
        import threading
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_native_id()
        assert isinstance(event["t_us"], int)

    def test_record_disabled_is_a_no_op(self):
        flight.set_enabled(False)
        flight.record("dropped")
        flight.set_enabled(True)
        assert flight.recorder().events() == []

    def test_span_events_reach_the_ring(self):
        obs.set_enabled(True)
        with obs.span("ringed"):
            pass
        kinds = [(e["kind"], e.get("name"))
                 for e in flight.recorder().events()]
        assert ("span_begin", "ringed") in kinds
        assert ("span_end", "ringed") in kinds

    def test_dump_gated_without_directory(self):
        flight.record("evidence")
        assert flight.dump_dir() is None
        assert flight.dump("no-dir") is None

    def test_dump_gated_while_disabled(self, tmp_path):
        flight.set_dump_dir(str(tmp_path))
        flight.set_enabled(False)
        assert flight.dump("disabled") is None
        assert list(tmp_path.iterdir()) == []

    def test_dump_writes_postmortem_document(self, tmp_path):
        flight.set_dump_dir(str(tmp_path))
        obs_trace.begin_trace()
        flight.record("step", n=1)
        flight.record("step", n=2)
        path = flight.dump(
            "why not?", extra={"who": "test"},
            worker_events=[{"kind": "command", "command": "collect"}],
        )
        assert path is not None
        document = json.loads(open(path).read())
        assert document["reason"] == "why not?"
        assert document["trace_id"] == obs_trace.trace_id()
        assert [e["n"] for e in document["events"]] == [1, 2]
        assert document["worker_events"][0]["command"] == "collect"
        assert document["extra"] == {"who": "test"}
        # The reason is sanitised in the filename, not the document.
        assert "why_not_" in path

    def test_excepthook_dumps_then_defers(self, tmp_path, capsys):
        flight.set_dump_dir(str(tmp_path))
        hook = flight.install_excepthook()
        assert flight.install_excepthook() is hook  # idempotent
        try:
            raise ValueError("boom for the recorder")
        except ValueError:
            hook(*sys.exc_info())
        dumps = list(tmp_path.glob("flight-unhandled-exception-*.json"))
        assert len(dumps) == 1
        document = json.loads(dumps[0].read_text())
        assert "boom for the recorder" in document["extra"]["exception"]
        kinds = [e["kind"] for e in document["events"]]
        assert "unhandled_exception" in kinds
        # The prior hook still ran (default hook prints the traceback).
        assert "boom for the recorder" in capsys.readouterr().err


# -- crash postmortems through the real restart paths -------------------------


def rollout_pool(transport, **kwargs):
    env = make_offload_env("single_hop", 3, episode_limit=5)
    actors = make_classical_team(env, 4)
    if transport == "shm":
        kwargs = {**SMALL_RING, **kwargs}
    return env, ShardedRolloutCollector(
        env, actors, n_envs=4, n_workers=2, transport=transport, **kwargs
    )


class TestCrashPostmortem:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_killed_rollout_worker_leaves_a_postmortem(self, tmp_path,
                                                       transport):
        flight.set_dump_dir(str(tmp_path))
        _, pool = rollout_pool(transport)
        with pool:
            # Workers were told to keep file rings in the dump directory.
            rings = sorted(p.name for p in tmp_path.glob("*.ring"))
            assert len(rings) == 2
            rng = np.random.default_rng(11)
            pool.collect(4, rng)
            pool.debug_crash_worker(0)
            pool.collect(4, rng)  # restart-and-replay fires the dump
            assert pool.total_restarts == 1
            dumps = list(tmp_path.glob("flight-worker-crash-*.json"))
            assert len(dumps) == 1
            document = json.loads(dumps[0].read_text())
            assert document["extra"]["restarts"] == 1
            # The dead worker's recovered ring shows what it was doing:
            # its init and the collects it served before the kill.
            commands = [e["command"] for e in document["worker_events"]
                        if e["kind"] == "command"]
            assert "collect" in commands
            # The parent's own ring recorded the restart decision.
            assert any(e["kind"] == "worker_restart"
                       for e in document["events"])
        # Ring files are postmortem scaffolding, removed on clean close.
        assert list(tmp_path.glob("*.ring")) == []

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_no_dump_dir_means_no_ring_files_or_dumps(self, tmp_path,
                                                      transport):
        assert flight.dump_dir() is None
        _, pool = rollout_pool(transport)
        with pool:
            rng = np.random.default_rng(11)
            pool.collect(4, rng)
            pool.debug_crash_worker(0)
            pool.collect(4, rng)
            assert pool.total_restarts == 1
        assert list(tmp_path.iterdir()) == []

    def test_killed_serving_shard_leaves_a_postmortem(self, tmp_path):
        flight.set_dump_dir(str(tmp_path))
        spec = FrameworkSpec(
            name="proposed", env_config=SingleHopConfig(episode_limit=5)
        )
        engine = ShardedPolicyEngine(spec, n_workers=2, transport="pipe")
        try:
            rng = np.random.default_rng(5)
            observations = rng.uniform(
                size=(4, spec.env_config.observation_size)
            )
            agents = [0, 1, 0, 1]
            engine.infer(observations, agents)
            engine._workers[0].process.kill()
            engine._workers[0].process.join(timeout=5.0)
            engine.infer(observations, agents)
            assert engine.total_restarts >= 1
        finally:
            engine.close()
        dumps = list(tmp_path.glob("flight-serving-worker-restart-*.json"))
        assert len(dumps) == 1
        document = json.loads(dumps[0].read_text())
        assert document["extra"]["worker"] == "repro-serving-0"
        commands = [e["command"] for e in document["worker_events"]
                    if e["kind"] == "command"]
        assert "init" in commands and "infer" in commands
        assert list(tmp_path.glob("*.ring")) == []
