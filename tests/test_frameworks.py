"""Unit tests for the framework presets (Section IV-C)."""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.actors import ClassicalActor, QuantumActor, RandomActor
from repro.marl.critics import ClassicalCentralCritic, QuantumCentralCritic
from repro.marl.frameworks import (
    FRAMEWORK_NAMES,
    build_framework,
    evaluate_random_walk,
)
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel


ENV = SingleHopConfig(episode_limit=5)
TRAIN = TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3)


class TestComposition:
    def test_proposed_is_fully_quantum(self):
        fw = build_framework("proposed", env_config=ENV, train_config=TRAIN)
        assert all(isinstance(a, QuantumActor) for a in fw.actors.actors)
        assert isinstance(fw.trainer.critic, QuantumCentralCritic)
        assert isinstance(fw.trainer.target_critic, QuantumCentralCritic)

    def test_comp1_is_hybrid(self):
        fw = build_framework("comp1", env_config=ENV, train_config=TRAIN)
        assert all(isinstance(a, QuantumActor) for a in fw.actors.actors)
        assert isinstance(fw.trainer.critic, ClassicalCentralCritic)

    def test_comp2_and_comp3_classical(self):
        for name in ("comp2", "comp3"):
            fw = build_framework(name, env_config=ENV, train_config=TRAIN)
            assert all(isinstance(a, ClassicalActor) for a in fw.actors.actors)
            assert isinstance(fw.trainer.critic, ClassicalCentralCritic)

    def test_random_untrainable(self):
        fw = build_framework("random", env_config=ENV)
        assert all(isinstance(a, RandomActor) for a in fw.actors.actors)
        assert not fw.trainable
        with pytest.raises(RuntimeError):
            fw.train()

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_framework("comp9")


class TestParameterBudgets:
    def test_quantum_budget_is_exactly_50(self):
        fw = build_framework("proposed", env_config=ENV, train_config=TRAIN)
        assert fw.metadata["actor_parameters"] == 50
        assert fw.metadata["critic_parameters"] == 50

    def test_comp2_budget_near_50(self):
        fw = build_framework("comp2", env_config=ENV, train_config=TRAIN)
        assert 40 <= fw.metadata["actor_parameters"] <= 60
        assert 40 <= fw.metadata["critic_parameters"] <= 60

    def test_comp3_budget_over_40k(self):
        fw = build_framework("comp3", env_config=ENV, train_config=TRAIN)
        assert fw.metadata["total_parameters"] > 40_000

    def test_random_budget_zero(self):
        fw = build_framework("random", env_config=ENV)
        assert fw.metadata["total_parameters"] == 0


class TestSeeding:
    def test_same_seed_same_initial_weights(self):
        a = build_framework("proposed", seed=3, env_config=ENV, train_config=TRAIN)
        b = build_framework("proposed", seed=3, env_config=ENV, train_config=TRAIN)
        wa = a.actors.actors[0].layer.weights.data
        wb = b.actors.actors[0].layer.weights.data
        assert np.allclose(wa, wb)

    def test_different_seed_different_weights(self):
        a = build_framework("proposed", seed=3, env_config=ENV, train_config=TRAIN)
        b = build_framework("proposed", seed=4, env_config=ENV, train_config=TRAIN)
        assert not np.allclose(
            a.actors.actors[0].layer.weights.data,
            b.actors.actors[0].layer.weights.data,
        )

    def test_actors_have_distinct_weights(self):
        fw = build_framework("proposed", env_config=ENV, train_config=TRAIN)
        w0 = fw.actors.actors[0].layer.weights.data
        w1 = fw.actors.actors[1].layer.weights.data
        assert not np.allclose(w0, w1)

    def test_actors_share_circuit_structure(self):
        fw = build_framework("proposed", env_config=ENV, train_config=TRAIN)
        circuits = {id(a.layer.vqc.circuit) for a in fw.actors.actors}
        assert len(circuits) == 1


class TestBackendsAndNoise:
    def test_default_backend_exact(self):
        fw = build_framework("proposed", env_config=ENV, train_config=TRAIN)
        backend = fw.actors.actors[0].layer.backend
        assert isinstance(backend, StatevectorBackend)
        assert backend.shots is None

    def test_noise_model_switches_backend_and_gradients(self):
        fw = build_framework(
            "proposed",
            env_config=ENV,
            train_config=TRAIN,
            noise_model=NoiseModel(0.01),
        )
        actor = fw.actors.actors[0]
        assert isinstance(actor.layer.backend, DensityMatrixBackend)
        assert actor.layer.gradient_method == "parameter_shift"

    def test_shots_backend(self):
        fw = build_framework(
            "proposed", env_config=ENV, train_config=TRAIN, shots=32
        )
        actor = fw.actors.actors[0]
        assert isinstance(actor.layer.backend, StatevectorBackend)
        assert actor.layer.backend.shots == 32
        assert actor.layer.gradient_method == "parameter_shift"


class TestTrainingAndEvaluation:
    def test_all_frameworks_train_one_epoch(self):
        for name in FRAMEWORK_NAMES:
            fw = build_framework(name, env_config=ENV, train_config=TRAIN)
            if fw.trainable:
                history = fw.train(n_epochs=1)
                assert history.n_epochs == 1

    def test_evaluate_returns_stats(self):
        fw = build_framework("comp2", env_config=ENV, train_config=TRAIN)
        stats = fw.evaluate(n_episodes=2)
        assert stats["total_reward"] <= 0.0

    def test_evaluate_vectorized(self):
        fw = build_framework("comp2", env_config=ENV, train_config=TRAIN)
        stats = fw.evaluate(n_episodes=3, vectorized=True)
        assert set(stats) == {
            "total_reward", "length", "mean_queue", "empty_ratio",
            "overflow_ratio",
        }
        assert stats["length"] == 5
        assert stats["total_reward"] <= 0.0

    def test_rollout_envs_override(self):
        fw = build_framework(
            "comp2", env_config=ENV,
            train_config=TrainingConfig(
                episodes_per_epoch=4, actor_lr=1e-3, critic_lr=1e-3
            ),
            rollout_envs=4,
        )
        assert fw.trainer.config.rollout_envs == 4
        assert fw.trainer.vectorized_rollouts
        history = fw.train(n_epochs=1)
        assert history.n_epochs == 1

    def test_random_evaluation_stochastic(self):
        fw = build_framework("random", env_config=ENV)
        stats = fw.evaluate(n_episodes=3)
        assert stats["length"] == 5

    def test_achievability_requires_training(self):
        fw = build_framework("comp2", env_config=ENV, train_config=TRAIN)
        with pytest.raises(RuntimeError):
            fw.achievability(-10.0)
        fw.train(n_epochs=2)
        value = fw.achievability(-10.0, window=2)
        assert value <= 1.0

    def test_evaluate_random_walk_negative(self):
        value = evaluate_random_walk(seed=1, env_config=ENV, n_episodes=5)
        assert value < 0.0

    def test_repr(self):
        fw = build_framework("comp2", env_config=ENV, train_config=TRAIN)
        assert "comp2" in repr(fw)
