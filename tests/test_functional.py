"""Unit tests for differentiable functions."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient


def check_gradient(build_loss, array, atol=1e-6):
    x = Tensor(array.copy(), requires_grad=True)
    build_loss(x).backward()
    numeric = numeric_gradient(lambda a: build_loss(Tensor(a)).item(), array)
    assert np.allclose(x.grad, numeric, atol=atol)


class TestElementwise:
    def test_exp(self, rng):
        check_gradient(lambda x: F.exp(x).sum(), rng.normal(size=(3, 2)))

    def test_log(self, rng):
        array = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda x: F.log(x).sum(), array)

    def test_tanh(self, rng):
        check_gradient(lambda x: F.tanh(x).sum(), rng.normal(size=(5,)))

    def test_relu(self, rng):
        array = rng.normal(size=(8,)) + 0.05  # avoid the kink at 0
        check_gradient(lambda x: F.relu(x).sum(), array)

    def test_relu_zero_below(self):
        out = F.relu(Tensor([-1.0, 2.0]))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_sigmoid(self, rng):
        check_gradient(lambda x: F.sigmoid(x).sum(), rng.normal(size=(5,)))

    def test_sigmoid_range(self, rng):
        out = F.sigmoid(Tensor(rng.normal(size=10) * 10))
        assert np.all(out.data > 0) and np.all(out.data < 1)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 5))))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(2, 3))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        assert np.allclose(a, b)

    def test_overflow_stability(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_gradient(self, rng):
        weights = rng.normal(size=(3, 4))
        check_gradient(
            lambda x: (F.softmax(x) * weights).sum(), rng.normal(size=(3, 4))
        )

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(3, 4))
        direct = F.log_softmax(Tensor(logits)).data
        composed = np.log(F.softmax(Tensor(logits)).data)
        assert np.allclose(direct, composed)

    def test_log_softmax_gradient(self, rng):
        weights = rng.normal(size=(3, 4))
        check_gradient(
            lambda x: (F.log_softmax(x) * weights).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_log_softmax_extreme_logits(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()


class TestGather:
    def test_selects_elements(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        out = F.gather(x, np.array([2, 0]))
        assert np.allclose(out.data, [2.0, 3.0])

    def test_gradient_routes_to_selected(self, rng):
        indices = np.array([1, 0, 2])
        check_gradient(
            lambda x: (F.gather(x, indices) * np.array([1.0, 2.0, 3.0])).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_shape_validation(self):
        x = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            F.gather(x, np.array([0]))
        with pytest.raises(ValueError):
            F.gather(Tensor(np.zeros(3)), np.array([0]))


class TestCombinators:
    def test_concatenate_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((1, 2)))
        out = F.concatenate([a, b], axis=0)
        assert out.shape == (3, 2)

    def test_concatenate_gradients(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = F.concatenate([a, b], axis=1)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_stack_gradients(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)


class TestLosses:
    def test_mse_value(self):
        loss = F.mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_mse_gradient(self, rng):
        target = rng.normal(size=(4,))
        check_gradient(
            lambda x: F.mse_loss(x, target), rng.normal(size=(4,))
        )

    def test_mse_target_detached(self):
        target = Tensor([1.0], requires_grad=True)
        pred = Tensor([0.0], requires_grad=True)
        F.mse_loss(pred, target).backward()
        assert target.grad is None

    def test_huber_quadratic_region_matches_mse_half(self):
        pred = Tensor([0.2], requires_grad=True)
        loss = F.huber_loss(pred, np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.5 * 0.04)

    def test_huber_linear_region(self):
        loss = F.huber_loss(Tensor([5.0]), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(4.5)

    def test_huber_gradient(self, rng):
        target = np.zeros(5)
        array = np.array([-3.0, -0.5, 0.2, 0.7, 4.0])
        check_gradient(
            lambda x: F.huber_loss(x, target, delta=1.0), array
        )
