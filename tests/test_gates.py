"""Unit tests for the gate algebra."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.quantum import gates


ALL_FIXED = ["i", "x", "y", "z", "h", "s", "t", "cnot", "cz", "swap", "toffoli"]
ALL_ROTATIONS = ["rx", "ry", "rz", "crx", "cry", "crz"]


class TestFixedGates:
    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_unitary(self, name):
        spec = gates.get_gate_spec(name)
        assert gates.is_unitary(spec.matrix())

    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_dimension_matches_arity(self, name):
        spec = gates.get_gate_spec(name)
        assert spec.matrix().shape == (spec.dim, spec.dim)
        assert spec.dim == 2**spec.n_qubits

    def test_pauli_algebra(self):
        assert np.allclose(gates.PAULI_X @ gates.PAULI_X, np.eye(2))
        assert np.allclose(gates.PAULI_Y @ gates.PAULI_Y, np.eye(2))
        assert np.allclose(gates.PAULI_Z @ gates.PAULI_Z, np.eye(2))
        # XY = iZ cyclic relation
        assert np.allclose(
            gates.PAULI_X @ gates.PAULI_Y, 1j * gates.PAULI_Z
        )

    def test_hadamard_maps_z_to_x(self):
        h = gates.HADAMARD
        assert np.allclose(h @ gates.PAULI_Z @ h, gates.PAULI_X)

    def test_cnot_flips_target_when_control_set(self):
        # |10> -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        out = gates.CNOT @ state
        assert np.allclose(out, [0, 0, 0, 1])

    def test_cnot_identity_when_control_clear(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(gates.CNOT @ state, state)

    def test_swap_exchanges_basis(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = gates.SWAP @ state
        expected = np.zeros(4)
        expected[2] = 1.0  # |10>
        assert np.allclose(out, expected)

    def test_toffoli_truth_table(self):
        for index in range(8):
            state = np.zeros(8)
            state[index] = 1.0
            out = gates.TOFFOLI @ state
            expected_index = index ^ 1 if index >= 6 else index
            assert np.argmax(np.abs(out)) == expected_index

    def test_fixed_gate_rejects_parameter(self):
        with pytest.raises(ValueError):
            gates.get_gate_spec("h").matrix(0.3)


class TestRotations:
    @pytest.mark.parametrize("name", ALL_ROTATIONS)
    @pytest.mark.parametrize("theta", [-2.5, -0.3, 0.0, 0.7, np.pi, 5.9])
    def test_unitary(self, name, theta):
        spec = gates.get_gate_spec(name)
        assert gates.is_unitary(spec.matrix(theta))

    @pytest.mark.parametrize("name", ALL_ROTATIONS)
    def test_zero_angle_is_identity(self, name):
        spec = gates.get_gate_spec(name)
        assert np.allclose(spec.matrix(0.0), np.eye(spec.dim))

    @pytest.mark.parametrize("name", ALL_ROTATIONS)
    def test_matches_exponential_of_generator(self, name):
        spec = gates.get_gate_spec(name)
        theta = 0.83
        expected = expm(-0.5j * theta * spec.generator)
        assert np.allclose(spec.matrix(theta), expected, atol=1e-12)

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_angle_additivity(self, name):
        spec = gates.get_gate_spec(name)
        a, b = 0.4, 1.1
        assert np.allclose(
            spec.matrix(a) @ spec.matrix(b), spec.matrix(a + b)
        )

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_full_turn_is_minus_identity(self, name):
        spec = gates.get_gate_spec(name)
        assert np.allclose(spec.matrix(2 * np.pi), -np.eye(2), atol=1e-12)

    def test_batched_angles_stack(self):
        thetas = np.array([0.1, 0.2, 0.3])
        batched = gates.rx(thetas)
        assert batched.shape == (3, 2, 2)
        for i, theta in enumerate(thetas):
            assert np.allclose(batched[i], gates.rx(theta))

    def test_batched_controlled(self):
        thetas = np.array([0.5, -0.5])
        batched = gates.cry(thetas)
        assert batched.shape == (2, 4, 4)
        for i, theta in enumerate(thetas):
            assert np.allclose(batched[i], gates.cry(theta))

    def test_rotation_requires_parameter(self):
        with pytest.raises(ValueError):
            gates.get_gate_spec("rx").matrix()

    def test_2d_angles_rejected(self):
        with pytest.raises(ValueError):
            gates.rx(np.zeros((2, 2)))

    def test_controlled_block_structure(self):
        theta = 0.9
        matrix = gates.crx(theta)
        assert np.allclose(matrix[:2, :2], np.eye(2))
        assert np.allclose(matrix[:2, 2:], 0)
        assert np.allclose(matrix[2:, :2], 0)
        assert np.allclose(matrix[2:, 2:], gates.rx(theta))

    def test_phase_shift(self):
        theta = 0.77
        matrix = gates.phase_shift(theta)
        assert np.allclose(matrix, np.diag([1.0, np.exp(1j * theta)]))

    def test_rot_composition(self):
        phi, theta, omega = 0.3, 0.8, -0.4
        expected = gates.rz(omega) @ gates.ry(theta) @ gates.rz(phi)
        assert np.allclose(gates.rot(phi, theta, omega), expected)


class TestRegistry:
    def test_unknown_gate(self):
        with pytest.raises(KeyError, match="unknown gate"):
            gates.get_gate_spec("nope")

    def test_case_insensitive(self):
        assert gates.get_gate_spec("RX") is gates.get_gate_spec("rx")

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_pauli_shift_rule(self, name):
        assert gates.get_gate_spec(name).shift_rule == "two_term"

    @pytest.mark.parametrize("name", ["crx", "cry", "crz"])
    def test_controlled_shift_rule(self, name):
        assert gates.get_gate_spec(name).shift_rule == "four_term"

    def test_generators_hermitian(self):
        for name in ALL_ROTATIONS:
            g = gates.get_gate_spec(name).generator
            assert np.allclose(g, g.conj().T)

    def test_is_unitary_rejects_nonunitary(self):
        assert not gates.is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
