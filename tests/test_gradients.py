"""Cross-validation of the three circuit-differentiation methods.

These are the most important tests in the quantum substrate: adjoint,
parameter-shift and finite differences are three independent derivations of
the same gradients, so their agreement to near machine precision is strong
evidence each is correct.
"""

import numpy as np
import pytest

from repro.quantum import backend as qback
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.gradients import (
    adjoint_backward,
    backward,
    finite_difference_backward,
    jacobians,
    parameter_shift_backward,
)
from repro.quantum.observables import Hamiltonian, PauliString, all_z_observables
from repro.quantum.vqc import build_vqc


def _random_problem(rng, n_qubits=3, n_features=6, n_weights=14, batch=4, seed=0):
    vqc = build_vqc(n_qubits, n_features, n_weights, seed=seed)
    inputs = rng.uniform(0.0, 1.0, size=(batch, n_features))
    weights = vqc.initial_weights(rng)
    upstream = rng.normal(size=(batch, vqc.n_outputs))
    return vqc, inputs, weights, upstream


@pytest.fixture(params=qback.available_array_backends())
def array_backend(request):
    """Run the method-agreement suite once per importable array backend.

    The adjoint sweep dispatches through the seam (device arrays on mock /
    cupy / torch); shift and finite-difference stay on host numpy, so each
    parametrization cross-checks the seamed sweep against two independent
    host derivations.
    """
    with qback.using_array_backend(request.param):
        yield qback.get_array_backend(request.param)


@pytest.mark.usefixtures("array_backend")
class TestMethodAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_adjoint_vs_parameter_shift(self, rng, seed):
        vqc, inputs, weights, upstream = _random_problem(rng, seed=seed)
        gi_a, gw_a = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        gi_p, gw_p = parameter_shift_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        assert np.allclose(gw_a, gw_p, atol=1e-10)
        assert np.allclose(gi_a, gi_p, atol=1e-10)

    def test_adjoint_vs_finite_difference(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng)
        gi_a, gw_a = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        gi_f, gw_f = finite_difference_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        assert np.allclose(gw_a, gw_f, atol=1e-6)
        assert np.allclose(gi_a, gi_f, atol=1e-6)

    def test_controlled_rotation_four_term_rule(self, rng):
        """Isolate CRX/CRY/CRZ so the four-term rule is what's being tested."""
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        circuit.add("crx", (0, 1), ParameterRef.weight(0))
        circuit.add("cry", (1, 0), ParameterRef.weight(1))
        circuit.add("crz", (0, 1), ParameterRef.weight(2))
        observables = all_z_observables(2)
        weights = rng.uniform(0, 2 * np.pi, size=3)
        upstream = rng.normal(size=(1, 2))
        _, gw_shift = parameter_shift_backward(
            circuit, observables, None, weights, upstream
        )
        _, gw_fd = finite_difference_backward(
            circuit, observables, None, weights, upstream
        )
        _, gw_adj = adjoint_backward(circuit, observables, None, weights, upstream)
        assert np.allclose(gw_shift, gw_fd, atol=1e-6)
        assert np.allclose(gw_adj, gw_fd, atol=1e-6)

    def test_shared_weight_product_rule(self, rng):
        """One weight driving several gates must accumulate all terms."""
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        circuit.add("cnot", (0, 1))
        circuit.add("ry", (1,), ParameterRef.weight(0, scale=2.0))
        circuit.add("rz", (0,), ParameterRef.weight(0))
        observables = all_z_observables(2)
        weights = np.array([0.7])
        upstream = np.ones((1, 2))
        _, gw_adj = adjoint_backward(circuit, observables, None, weights, upstream)
        _, gw_fd = finite_difference_backward(
            circuit, observables, None, weights, upstream
        )
        assert gw_adj.shape == (1,)
        assert np.allclose(gw_adj, gw_fd, atol=1e-6)

    def test_scaled_input_chain_rule(self, rng):
        circuit = QuantumCircuit(1)
        circuit.add("rx", (0,), ParameterRef.input(0, scale=np.pi))
        observables = [PauliString.z(0)]
        inputs = np.array([[0.3]])
        upstream = np.ones((1, 1))
        gi, _ = adjoint_backward(circuit, observables, inputs, None, upstream)
        # d<Z>/dx = -pi * sin(pi x)
        assert np.allclose(gi[0, 0], -np.pi * np.sin(np.pi * 0.3), atol=1e-10)

    def test_hamiltonian_observable_gradients(self, rng):
        vqc, inputs, weights, _ = _random_problem(rng, batch=2)
        ham = Hamiltonian([0.5, -1.5, 2.0], vqc.observables[:3])
        upstream = rng.normal(size=(2, 1))
        gi_a, gw_a = adjoint_backward(vqc.circuit, [ham], inputs, weights, upstream)
        gi_f, gw_f = finite_difference_backward(
            vqc.circuit, [ham], inputs, weights, upstream
        )
        assert np.allclose(gw_a, gw_f, atol=1e-6)
        assert np.allclose(gi_a, gi_f, atol=1e-6)

    def test_upstream_1d_promoted(self, rng):
        vqc, inputs, weights, _ = _random_problem(rng, batch=1)
        upstream = np.ones(vqc.n_outputs)
        gi, gw = adjoint_backward(
            vqc.circuit, vqc.observables, inputs[:1], weights, upstream
        )
        assert gi.shape == (1, vqc.n_features)
        assert gw.shape == (vqc.n_weights,)


class TestNoisyGradients:
    def test_parameter_shift_on_noisy_backend(self, rng):
        """The shift rule stays exact under Kraus noise; check against FD."""
        vqc, inputs, weights, upstream = _random_problem(
            rng, n_qubits=2, n_features=2, n_weights=6, batch=2
        )
        backend = DensityMatrixBackend(NoiseModel(0.02))
        gi_p, gw_p = parameter_shift_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream, backend
        )
        gi_f, gw_f = finite_difference_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream, backend
        )
        assert np.allclose(gw_p, gw_f, atol=1e-5)
        assert np.allclose(gi_p, gi_f, atol=1e-5)

    def test_noise_shrinks_gradients(self, rng):
        vqc, inputs, weights, upstream = _random_problem(
            rng, n_qubits=2, n_features=2, n_weights=8, batch=2
        )
        _, gw_clean = parameter_shift_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        _, gw_noisy = parameter_shift_backward(
            vqc.circuit,
            vqc.observables,
            inputs,
            weights,
            upstream,
            DensityMatrixBackend(NoiseModel(0.1)),
        )
        assert np.linalg.norm(gw_noisy) < np.linalg.norm(gw_clean)


class TestDispatch:
    def test_unknown_method(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng)
        with pytest.raises(ValueError, match="unknown gradient method"):
            backward(
                vqc.circuit, vqc.observables, inputs, weights, upstream,
                method="autograd",
            )

    def test_adjoint_rejects_density_backend(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng)
        with pytest.raises(ValueError, match="adjoint"):
            backward(
                vqc.circuit, vqc.observables, inputs, weights, upstream,
                method="adjoint", backend=DensityMatrixBackend(),
            )

    def test_adjoint_rejects_shots(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng)
        with pytest.raises(ValueError, match="exact"):
            backward(
                vqc.circuit, vqc.observables, inputs, weights, upstream,
                method="adjoint", backend=StatevectorBackend(shots=10),
            )

    def test_dispatch_equivalence(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng)
        direct = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        dispatched = backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream,
            method="adjoint",
        )
        assert np.allclose(direct[1], dispatched[1])


class TestJacobians:
    def test_shapes(self, rng):
        vqc, inputs, weights, _ = _random_problem(rng, batch=3)
        d_inputs, d_weights = jacobians(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert d_inputs.shape == (3, vqc.n_outputs, vqc.n_features)
        assert d_weights.shape == (3, vqc.n_outputs, vqc.n_weights)

    def test_jacobian_consistent_with_vjp(self, rng):
        vqc, inputs, weights, upstream = _random_problem(rng, batch=2)
        d_inputs, d_weights = jacobians(
            vqc.circuit, vqc.observables, inputs, weights
        )
        gi, gw = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        # VJP = upstream^T @ Jacobian, summed over observables (and batch
        # for weights).
        gi_ref = np.einsum("bj,bji->bi", upstream, d_inputs)
        gw_ref = np.einsum("bj,bjk->k", upstream, d_weights)
        assert np.allclose(gi, gi_ref, atol=1e-10)
        assert np.allclose(gw, gw_ref, atol=1e-10)

    def test_jacobian_methods_agree(self, rng):
        vqc, inputs, weights, _ = _random_problem(
            rng, n_qubits=2, n_features=2, n_weights=5, batch=1
        )
        d_in_a, d_w_a = jacobians(
            vqc.circuit, vqc.observables, inputs, weights, method="adjoint"
        )
        d_in_p, d_w_p = jacobians(
            vqc.circuit, vqc.observables, inputs, weights,
            method="parameter_shift",
        )
        assert np.allclose(d_w_a, d_w_p, atol=1e-10)
        assert np.allclose(d_in_a, d_in_p, atol=1e-10)
