"""Integration tests: end-to-end CTDE training actually learns.

These use reduced configurations (short episodes, few epochs) so the whole
module stays in tens of seconds, but they exercise the full stack: the
environment, quantum/classical actors and critics, adjoint backprop through
circuits, MAPG losses, Adam, and target-critic syncing.
"""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework, evaluate_random_walk

ENV = SingleHopConfig(episode_limit=20)
VQC = VQCConfig(critic_value_scale=10.0, n_variational_gates=30)
TRAIN = TrainingConfig(
    episodes_per_epoch=3,
    gamma=0.95,
    actor_lr=3e-3,
    critic_lr=2e-3,
    target_update_period=10,
    entropy_coef=0.01,
)


def first_vs_last(history, key, head=8, tail=8):
    series = history.series(key)
    return series[:head].mean(), series[-tail:].mean()


class TestLearning:
    @pytest.mark.slow
    def test_comp3_improves_over_random(self):
        framework = build_framework(
            "comp3", seed=11, env_config=ENV, train_config=TRAIN
        )
        history = framework.train(n_epochs=50)
        first, last = first_vs_last(history, "total_reward")
        random_walk = evaluate_random_walk(seed=12, env_config=ENV, n_episodes=20)
        assert last > first  # learning curve goes up
        assert last > random_walk  # clearly better than random

    @pytest.mark.slow
    def test_proposed_trains_stably(self):
        """Quantum MARL must not collapse and its critic must fit.

        Short runs start at seed-dependent points near the stochastic-policy
        plateau, so a strict reward-improvement assertion is flaky at test
        scale; the medium/full experiment presets (EXPERIMENTS.md) show the
        clear Fig. 3(a) learning curves.  Here we assert the training loop's
        health: no reward collapse, decreasing critic loss, moving policy.
        """
        framework = build_framework(
            "proposed", seed=11, env_config=ENV, vqc_config=VQC,
            train_config=TRAIN,
        )
        before = framework.actors.actors[0].layer.weights.data.copy()
        history = framework.train(n_epochs=40)
        first, last = first_vs_last(history, "total_reward")
        assert last > first - 1.5  # no collapse
        # TD loss stays bounded near its noise floor (reward variance).
        assert history.series("critic_loss")[-8:].mean() < 10.0
        assert np.isfinite(history.series("actor_loss")).all()
        after = framework.actors.actors[0].layer.weights.data
        assert not np.allclose(before, after)

    def test_critic_loss_decreases(self):
        framework = build_framework(
            "comp3", seed=13, env_config=ENV, train_config=TRAIN
        )
        history = framework.train(n_epochs=25)
        first, last = first_vs_last(history, "critic_loss", head=5, tail=5)
        assert last < first


class TestDeterminism:
    def test_same_seed_same_history(self):
        histories = []
        for _ in range(2):
            framework = build_framework(
                "proposed", seed=21, env_config=ENV, vqc_config=VQC,
                train_config=TRAIN,
            )
            histories.append(framework.train(n_epochs=3))
        a, b = histories
        assert np.allclose(a.series("total_reward"), b.series("total_reward"))
        assert np.allclose(a.series("critic_loss"), b.series("critic_loss"))

    def test_different_seeds_differ(self):
        rewards = []
        for seed in (31, 32):
            framework = build_framework(
                "comp2", seed=seed, env_config=ENV, train_config=TRAIN
            )
            rewards.append(framework.train(n_epochs=3).series("total_reward"))
        assert not np.allclose(rewards[0], rewards[1])


class TestHybridEndToEnd:
    def test_comp1_trains_with_quantum_actor_gradients(self):
        """Hybrid arm: adjoint actor gradients + classical critic updates."""
        framework = build_framework(
            "comp1", seed=41, env_config=ENV, vqc_config=VQC,
            train_config=TRAIN,
        )
        before = framework.actors.actors[0].layer.weights.data.copy()
        framework.train(n_epochs=2)
        after = framework.actors.actors[0].layer.weights.data
        assert not np.allclose(before, after)

    def test_noisy_framework_trains_one_epoch(self):
        """Parameter-shift training through the density-matrix backend."""
        from repro.quantum.channels import NoiseModel

        tiny_env = SingleHopConfig(episode_limit=4)
        framework = build_framework(
            "proposed",
            seed=43,
            env_config=tiny_env,
            vqc_config=VQCConfig(critic_value_scale=10.0, n_variational_gates=8),
            train_config=TrainingConfig(
                episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3
            ),
            noise_model=NoiseModel(0.005),
        )
        record = framework.trainer.train_epoch()
        assert np.isfinite(record["critic_loss"])
        assert np.isfinite(record["actor_loss"])

    def test_shot_based_framework_trains_one_epoch(self):
        tiny_env = SingleHopConfig(episode_limit=4)
        framework = build_framework(
            "proposed",
            seed=44,
            env_config=tiny_env,
            vqc_config=VQCConfig(critic_value_scale=10.0, n_variational_gates=8),
            train_config=TrainingConfig(
                episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3
            ),
            shots=64,
        )
        record = framework.trainer.train_epoch()
        assert np.isfinite(record["critic_loss"])
