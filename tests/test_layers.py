"""Unit tests for modules, layers and parameter management."""

import numpy as np
import pytest

from repro.nn.layers import (
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    count_parameters,
    mlp,
)
from repro.nn.tensor import Parameter, Tensor


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(3, 5, rng)
        out = layer(Tensor(np.zeros((2, 3))))
        assert out.shape == (2, 5)

    def test_affine_computation(self, rng):
        layer = Linear(2, 2, rng)
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.data = np.array([0.5, -0.5])
        out = layer(Tensor([[1.0, 1.0]]))
        assert np.allclose(out.data, [[1.5, 1.5]])

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert layer.n_parameters() == 6

    def test_init_scale(self, rng):
        layer = Linear(100, 50, rng)
        bound = 1.0 / np.sqrt(100)
        assert np.all(np.abs(layer.weight.data) <= bound)

    def test_gradients_flow(self, rng):
        layer = Linear(3, 1, rng)
        out = layer(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_repr(self, rng):
        assert "in=3" in repr(Linear(3, 1, rng))


class TestModuleReflection:
    def make_nested(self, rng):
        class Inner(Module):
            def __init__(self):
                self.fc = Linear(2, 2, rng)
                self.scale = Parameter(np.ones(1))

            def forward(self, x):
                return self.fc(x) * self.scale

        class Outer(Module):
            def __init__(self):
                self.inner = Inner()
                self.heads = [Linear(2, 1, rng), Linear(2, 1, rng)]

            def forward(self, x):
                h = self.inner(x)
                return self.heads[0](h) + self.heads[1](h)

        return Outer()

    def test_named_parameters_nested(self, rng):
        model = self.make_nested(rng)
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "inner.fc.weight",
            "inner.fc.bias",
            "inner.scale",
            "heads.0.weight",
            "heads.0.bias",
            "heads.1.weight",
            "heads.1.bias",
        }

    def test_n_parameters(self, rng):
        model = self.make_nested(rng)
        assert model.n_parameters() == (2 * 2 + 2) + 1 + 2 * (2 + 1)

    def test_zero_grad(self, rng):
        model = self.make_nested(rng)
        model(Tensor(np.ones((1, 2)))).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        model = self.make_nested(rng)
        other = self.make_nested(rng)
        state = model.state_dict()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert np.allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self, rng):
        model = self.make_nested(rng)
        state = model.state_dict()
        state["inner.scale"][0] = 99.0
        assert model.inner.scale.data[0] != 99.0

    def test_load_state_dict_key_mismatch(self, rng):
        model = self.make_nested(rng)
        state = model.state_dict()
        del state["inner.scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self, rng):
        model = self.make_nested(rng)
        state = model.state_dict()
        state["inner.scale"] = np.ones(2)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestActivationsAndSequential:
    def test_activation_modules(self):
        x = Tensor([[-1.0, 1.0]])
        assert np.allclose(Tanh()(x).data, np.tanh(x.data))
        assert np.allclose(ReLU()(x).data, [[0.0, 1.0]])
        assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))

    def test_sequential_order(self, rng):
        seq = Sequential(Linear(2, 2, rng), Tanh(), Linear(2, 1, rng))
        out = seq(Tensor(np.ones((3, 2))))
        assert out.shape == (3, 1)

    def test_sequential_parameters(self, rng):
        seq = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        assert seq.n_parameters() == (2 * 3 + 3) + (3 + 1)


class TestMlp:
    def test_structure(self, rng):
        net = mlp((4, 8, 2), rng)
        kinds = [type(m).__name__ for m in net.modules]
        assert kinds == ["Linear", "Tanh", "Linear"]

    def test_output_activation(self, rng):
        net = mlp((4, 2), rng, output_activation="sigmoid")
        assert type(net.modules[-1]).__name__ == "Sigmoid"

    def test_relu_hidden(self, rng):
        net = mlp((4, 8, 8, 2), rng, activation="relu")
        kinds = [type(m).__name__ for m in net.modules]
        assert kinds == ["Linear", "ReLU", "Linear", "ReLU", "Linear"]

    def test_count_matches(self, rng):
        sizes = (4, 64, 64, 4)
        assert mlp(sizes, rng).n_parameters() == count_parameters(sizes)

    def test_count_parameters_comp3(self):
        """The paper's Comp3 budget: > 40k parameters in total."""
        total = 4 * count_parameters((4, 64, 64, 4)) + count_parameters(
            (16, 160, 160, 1)
        )
        assert total > 40_000

    def test_too_few_sizes(self, rng):
        with pytest.raises(ValueError):
            mlp((4,), rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            mlp((4, 2), rng, activation="gelu")
        with pytest.raises(ValueError):
            mlp((4, 2), rng, output_activation="gelu")
