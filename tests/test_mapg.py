"""Unit tests for the MAPG loss components."""

import numpy as np
import pytest

from repro.marl.mapg import (
    actor_loss,
    critic_loss,
    entropy_bonus,
    td_errors,
    td_targets,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestTdTargets:
    def test_bootstraps_next_value(self):
        targets = td_targets(
            rewards=[1.0, 2.0],
            next_values=[10.0, 20.0],
            dones=[False, False],
            gamma=0.9,
        )
        assert np.allclose(targets, [10.0, 20.0])

    def test_terminal_masks_bootstrap(self):
        targets = td_targets(
            rewards=[1.0, 2.0],
            next_values=[10.0, 20.0],
            dones=[False, True],
            gamma=0.9,
        )
        assert np.allclose(targets, [10.0, 2.0])

    def test_gamma_zero_is_reward(self):
        targets = td_targets([3.0], [99.0], [False], 0.0)
        assert np.allclose(targets, [3.0])

    def test_td_errors(self):
        errors = td_errors([5.0, 1.0], [4.0, 3.0])
        assert np.allclose(errors, [1.0, -2.0])


class TestActorLoss:
    def test_value(self):
        log_probs = Tensor(np.log(np.array([[0.5, 0.5], [0.25, 0.75]])))
        loss = actor_loss(log_probs, [0, 1], [1.0, 2.0])
        expected = -np.mean([1.0 * np.log(0.5), 2.0 * np.log(0.75)])
        assert loss.item() == pytest.approx(expected)

    def test_gradient_direction(self):
        """Positive advantage must push probability of the taken action up."""
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        log_probs = F.log_softmax(logits)
        loss = actor_loss(log_probs, [0], [1.0])
        loss.backward()
        # Decreasing loss means increasing logit 0 relative to logit 1.
        assert logits.grad[0, 0] < 0
        assert logits.grad[0, 1] > 0

    def test_negative_advantage_flips_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        loss = actor_loss(F.log_softmax(logits), [0], [-1.0])
        loss.backward()
        assert logits.grad[0, 0] > 0

    def test_advantages_are_constants(self):
        """No gradient may flow through the advantage signal."""
        log_probs = Tensor(np.log(np.full((2, 2), 0.5)), requires_grad=True)
        loss = actor_loss(log_probs, [0, 1], np.array([1.0, -1.0]))
        loss.backward()
        assert log_probs.grad is not None


class TestCriticLoss:
    def test_mse_form(self):
        values = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = critic_loss(values, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx((1.0 + 4.0) / 2.0)

    def test_gradient_toward_target(self):
        values = Tensor(np.array([1.0]), requires_grad=True)
        critic_loss(values, np.array([3.0])).backward()
        assert values.grad[0] < 0  # move value up toward the target


class TestEntropyBonus:
    def test_uniform_is_maximal(self):
        uniform = Tensor(np.full((1, 4), 0.25))
        peaked = Tensor(np.array([[0.97, 0.01, 0.01, 0.01]]))
        assert entropy_bonus(uniform).item() > entropy_bonus(peaked).item()

    def test_uniform_value(self):
        uniform = Tensor(np.full((1, 4), 0.25))
        assert entropy_bonus(uniform).item() == pytest.approx(np.log(4), abs=1e-6)

    def test_differentiable(self):
        logits = Tensor(np.array([[2.0, 0.0]]), requires_grad=True)
        probs = F.softmax(logits)
        entropy_bonus(probs).backward()
        # Maximising entropy should pull the large logit down.
        assert logits.grad[0, 0] < 0
