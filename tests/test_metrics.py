"""Unit tests for metrics and the achievability score."""

import numpy as np
import pytest

from repro.marl.metrics import (
    MetricsHistory,
    achievability,
    exponential_moving_average,
    rolling_mean,
)


class TestAchievability:
    def test_paper_numbers(self):
        """Section IV-D(1): the published rewards give the published scores."""
        random_walk = -33.2
        assert achievability(-3.0, random_walk) == pytest.approx(0.909, abs=0.001)
        assert achievability(-16.6, random_walk) == pytest.approx(0.50, abs=0.005)
        assert achievability(-22.5, random_walk) == pytest.approx(0.322, abs=0.001)
        assert achievability(-2.8, random_walk) == pytest.approx(0.915, abs=0.001)

    def test_boundary_values(self):
        assert achievability(-10.0, -10.0) == 0.0
        assert achievability(0.0, -10.0) == 1.0

    def test_worse_than_random_is_negative(self):
        assert achievability(-20.0, -10.0) < 0.0

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            achievability(-1.0, 5.0)


class TestSmoothing:
    def test_ema_constant_series(self):
        series = np.full(10, 3.0)
        assert np.allclose(exponential_moving_average(series), 3.0)

    def test_ema_tracks_trend(self):
        series = np.arange(50.0)
        smoothed = exponential_moving_average(series, alpha=0.5)
        assert np.all(np.diff(smoothed) > 0)
        assert smoothed[-1] < series[-1]  # lags behind

    def test_ema_alpha_one_is_identity(self):
        series = np.array([1.0, 5.0, 2.0])
        assert np.allclose(exponential_moving_average(series, alpha=1.0), series)

    def test_ema_validation(self):
        with pytest.raises(ValueError):
            exponential_moving_average(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            exponential_moving_average(np.zeros(3), alpha=0.0)

    def test_rolling_mean(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        out = rolling_mean(series, window=2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_rolling_mean_window_one(self):
        series = np.array([1.0, 2.0])
        assert np.allclose(rolling_mean(series, 1), series)

    def test_rolling_mean_validation(self):
        with pytest.raises(ValueError):
            rolling_mean(np.zeros(3), 0)


class TestMetricsHistory:
    def make_history(self):
        history = MetricsHistory()
        for epoch in range(5):
            history.append({"epoch": epoch, "total_reward": -10.0 + epoch})
        return history

    def test_series(self):
        history = self.make_history()
        assert np.allclose(history.series("total_reward"), [-10, -9, -8, -7, -6])

    def test_last_window(self):
        history = self.make_history()
        assert history.last("total_reward") == -6.0
        assert history.last("total_reward", window=2) == -6.5

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            MetricsHistory().last("total_reward")

    def test_smoothed(self):
        history = self.make_history()
        smoothed = history.smoothed("total_reward", alpha=1.0)
        assert np.allclose(smoothed, history.series("total_reward"))

    def test_keys_and_to_dict(self):
        history = self.make_history()
        assert set(history.keys()) == {"epoch", "total_reward"}
        as_dict = history.to_dict()
        assert as_dict["epoch"] == [0, 1, 2, 3, 4]

    def test_records_are_copies(self):
        history = MetricsHistory()
        record = {"a": 1}
        history.append(record)
        record["a"] = 2
        assert history.records[0]["a"] == 1

    def test_len(self):
        assert len(self.make_history()) == 5
        assert MetricsHistory().keys() == []
