"""Unit tests for the multi-hop offloading extension."""

import networkx as nx
import numpy as np
import pytest

from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology


class TestLayeredTopology:
    def test_full_mesh_edge_count(self):
        graph = layered_topology((4, 3, 2))
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == 4 * 3 + 3 * 2

    def test_thin_chain(self):
        graph = layered_topology((4, 2), full_mesh=False)
        assert graph.number_of_edges() == 4
        assert set(graph.successors("L0/0")) == {"L1/0"}
        assert set(graph.successors("L0/1")) == {"L1/1"}

    def test_layer_attributes(self):
        graph = layered_topology((2, 2))
        layers = nx.get_node_attributes(graph, "layer")
        assert layers["L0/0"] == 0
        assert layers["L1/1"] == 1

    def test_is_dag(self):
        assert nx.is_directed_acyclic_graph(layered_topology((3, 2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            layered_topology((4,))
        with pytest.raises(ValueError):
            layered_topology((4, 0))


def make_env(layer_sizes=(4, 2), seed=0, **kwargs):
    return MultiHopOffloadEnv(
        layered_topology(layer_sizes),
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestSingleHopSpecialCase:
    """With layers (N, K) the multi-hop env reduces to the paper's setting."""

    def test_spaces_match_single_hop(self):
        env = make_env((4, 2))
        assert env.n_agents == 4
        assert env.action_space.n == 4  # 2 successors x 2 amounts
        assert env.observation_space.size == 4
        assert env.state_size == 16

    def test_reward_nonpositive(self):
        env = make_env((4, 2))
        rng = np.random.default_rng(1)
        env.reset()
        for _ in range(30):
            result = env.step([env.action_space.sample(rng) for _ in range(4)])
            assert result.reward <= 0.0
            if result.done:
                env.reset()


class TestThreeLayer:
    def test_relay_topology_runs(self):
        env = make_env((4, 3, 2), episode_limit=10)
        observations, state = env.reset()
        assert len(observations) == 4
        assert observations[0].shape == (2 + 3,)  # own x2 + 3 relays
        done = False
        rng = np.random.default_rng(2)
        steps = 0
        while not done:
            result = env.step(
                [env.action_space.sample(rng) for _ in range(4)]
            )
            done = result.done
            steps += 1
        assert steps == 10

    def test_queue_levels_bounded(self):
        env = make_env((3, 2, 2), episode_limit=40)
        rng = np.random.default_rng(3)
        env.reset()
        for _ in range(40):
            result = env.step([env.action_space.sample(rng) for _ in range(3)])
            assert np.all(result.info["agent_levels"] >= 0)
            assert np.all(result.info["agent_levels"] <= 1.0)
            assert np.all(result.info["network_levels"] >= 0)
            assert np.all(result.info["network_levels"] <= 1.0)

    def test_relays_forward_packets(self):
        """With no agent traffic, relays still drain into sinks."""
        env = make_env((2, 2, 1), episode_limit=5, w_p=0.0)
        env.reset()
        sink_before = env._network_queues.levels[env._network_index["L2/0"]]
        # Send minimal packets to relay 0 only.
        result = env.step([0, 0])
        # The sink received forwarded volume from both relays (0.3 each),
        # minus its own service 0.3: net +0.3 from 0.5 -> 0.8.
        sink_after = result.info["network_levels"][env._network_index["L2/0"]]
        assert sink_after == pytest.approx(sink_before + 0.3)

    def test_state_is_concatenation(self):
        env = make_env((3, 2, 2))
        observations, state = env.reset()
        assert np.allclose(state, np.concatenate(observations))


class TestValidation:
    def test_rejects_cycle(self):
        graph = layered_topology((2, 2))
        graph.add_edge("L1/0", "L0/0")
        with pytest.raises(ValueError, match="DAG"):
            MultiHopOffloadEnv(graph)

    def test_rejects_missing_layers(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError, match="layer"):
            MultiHopOffloadEnv(graph)

    def test_rejects_mixed_out_degree(self):
        graph = layered_topology((2, 2))
        graph.remove_edge("L0/0", "L1/1")
        with pytest.raises(ValueError, match="out-degree"):
            MultiHopOffloadEnv(graph)

    def test_rejects_isolated_agent(self):
        graph = layered_topology((2, 2))
        graph.remove_edge("L0/0", "L1/0")
        graph.remove_edge("L0/0", "L1/1")
        with pytest.raises(ValueError):
            MultiHopOffloadEnv(graph)

    def test_action_validation(self):
        env = make_env((2, 2))
        env.reset()
        with pytest.raises(ValueError):
            env.step([0])
        with pytest.raises(ValueError):
            env.step([0, 99])

    def test_repr(self):
        assert "layers=4-2" in repr(make_env((4, 2)))


class TestTrainingIntegration:
    def test_quantum_actors_train_on_multi_hop(self):
        """The CTDE stack is environment-agnostic: train on a 3-layer net."""
        from repro.config import TrainingConfig
        from repro.marl.actors import QuantumActor, QuantumActorGroup
        from repro.marl.critics import QuantumCentralCritic
        from repro.marl.trainer import CTDETrainer
        from repro.quantum.vqc import build_vqc

        env = make_env((2, 2, 2), episode_limit=6)
        rng = np.random.default_rng(5)
        actor_vqc = build_vqc(
            4, env.observation_space.size, 12, seed=1
        )
        actors = QuantumActorGroup(
            [
                QuantumActor(actor_vqc, np.random.default_rng(i))
                for i in range(env.n_agents)
            ]
        )
        critic_vqc = build_vqc(4, env.state_size, 12, seed=2)
        critic = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(8), value_scale=10.0
        )
        target = QuantumCentralCritic(
            critic_vqc, np.random.default_rng(9), value_scale=10.0
        )
        trainer = CTDETrainer(
            env,
            actors,
            critic,
            target,
            TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3),
            rng,
        )
        record = trainer.train_epoch()
        assert np.isfinite(record["critic_loss"])
        assert np.isfinite(record["actor_loss"])


class TestOverflowTermination:
    def test_overflow_ends_episode_early(self):
        # A heavily preloaded narrow sink layer overflows well before a
        # generous horizon under random traffic.
        env = make_env(
            (3, 2, 1), seed=5, episode_limit=50,
            initial_queue_level=0.95, terminate_on_overflow=True,
        )
        assert env.has_data_dependent_termination
        env.reset()
        rng = np.random.default_rng(6)
        steps = 0
        done = False
        while not done:
            result = env.step(
                [env.action_space.sample(rng) for _ in range(3)]
            )
            done = result.done
            steps += 1
            assert steps <= 50
        assert steps < 50
        assert result.info["overflow_ratio"] > 0.0

    def test_flag_off_keeps_fixed_horizon(self):
        env = make_env((3, 2, 1), seed=5, episode_limit=6,
                       initial_queue_level=0.95)
        assert not env.has_data_dependent_termination
        env.reset()
        rng = np.random.default_rng(6)
        for step in range(1, 7):
            result = env.step(
                [env.action_space.sample(rng) for _ in range(3)]
            )
            assert result.done == (step == 6)
