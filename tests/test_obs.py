"""Tests for the unified telemetry subsystem (``repro.obs``).

Covers the registry (thread safety, histogram bucket semantics, disabled
no-op), span tracing with JSONL export and the report CLI, cross-process
snapshot merging through the sharded rollout engines, and — the contract
that matters most — that enabling telemetry never perturbs the bit-exact
cross-engine determinism harness.
"""

import io
import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.marl.metrics import (
    format_epoch_summary,
    population_fitness_summary,
    progress_printer,
    publish_epoch_record,
)
from repro.obs import report as obs_report

from tests.helpers import (
    ES_ENGINES,
    ROLLOUT_ENGINES,
    assert_cross_engine_equivalence,
    assert_es_cross_engine_equivalence,
    make_engine_trainer,
    make_es_trainer,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with a pristine, disabled registry —
    including the causal-trace and flight-recorder globals layered on it."""
    from repro.obs import flight as obs_flight
    from repro.obs import trace as obs_trace

    previous = obs.set_enabled(False)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    obs_flight.reset()
    yield
    obs.set_enabled(previous)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    obs_flight.reset()


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        registry = obs.MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(2.5)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_kind_mismatch_rejected(self):
        registry = obs.MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_counter_thread_safety(self):
        registry = obs.MetricsRegistry()
        n_threads, n_incs = 8, 2000

        def work():
            counter = registry.counter("hits")
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits").value == n_threads * n_incs

    def test_creation_race_yields_one_metric(self):
        registry = obs.MetricsRegistry()
        results = []
        barrier = threading.Barrier(4)

        def create():
            barrier.wait()
            results.append(registry.counter("raced"))

        threads = [threading.Thread(target=create) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is results[0] for metric in results)
        assert len(registry) == 1

    def test_snapshot_reset_empties_registry(self):
        registry = obs.MetricsRegistry()
        registry.counter("once").inc()
        first = registry.snapshot(reset=True)
        assert first["counters"]["once"] == 1
        assert len(registry) == 0
        assert registry.snapshot()["counters"] == {}


class TestHistogram:
    def test_bucket_edges(self):
        h = obs.Histogram("h", min_edge=1.0, n_buckets=4, base=2.0)
        assert h.edges == [1.0, 2.0, 4.0, 8.0]
        # Value v lands in the first bucket with v <= edge; beyond the last
        # edge goes to the overflow bucket.
        for value, bucket in [(0.5, 0), (1.0, 0), (1.5, 1), (2.0, 1),
                              (8.0, 3), (9.0, 4)]:
            h2 = obs.Histogram("h2", min_edge=1.0, n_buckets=4, base=2.0)
            h2.observe(value)
            assert h2.state()["counts"][bucket] == 1, value

    def test_state_tracks_exact_extremes(self):
        h = obs.Histogram("h", min_edge=1.0, n_buckets=4)
        for value in (0.25, 3.0, 100.0):
            h.observe(value)
        state = h.state()
        assert state["count"] == 3
        assert state["sum"] == pytest.approx(103.25)
        assert state["min"] == 0.25
        assert state["max"] == 100.0

    def test_quantiles_clamped_to_observed_range(self):
        h = obs.Histogram("h", min_edge=1.0, n_buckets=8)
        for value in (2.0, 3.0, 3.5, 50.0):
            h.observe(value)
        state = h.state()
        assert state["min"] <= obs.histogram_quantile(state, 0.5) <= 4.0
        assert obs.histogram_quantile(state, 1.0) == 50.0
        assert obs.histogram_quantile(state, 0.0) >= state["min"]

    def test_empty_quantile_is_zero(self):
        h = obs.Histogram("h")
        assert obs.histogram_quantile(h.state(), 0.5) == 0.0

    def test_merge_requires_matching_edges(self):
        a = obs.Histogram("h", min_edge=1.0, n_buckets=4)
        b = obs.Histogram("h", min_edge=1.0, n_buckets=8)
        with pytest.raises(ValueError, match="mismatched bucket"):
            a.merge_state(b.state())


# -- disabled mode ------------------------------------------------------------


class TestDisabledMode:
    def test_accessors_return_null_singleton(self):
        assert not obs.enabled()
        assert obs.counter("x") is obs.NULL_METRIC
        assert obs.gauge("x") is obs.NULL_METRIC
        assert obs.histogram("x") is obs.NULL_METRIC

    def test_null_metric_absorbs_everything(self):
        obs.counter("x").inc()
        obs.gauge("x").set(1.0)
        obs.histogram("x").observe(3.0)
        snap = obs.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_span_is_noop_while_disabled(self):
        with obs.span("work"):
            pass
        assert obs.snapshot()["counters"] == {}

    def test_telemetry_scope_restores_flag(self):
        with obs.telemetry():
            assert obs.enabled()
            obs.counter("scoped").inc()
        assert not obs.enabled()
        assert obs.snapshot()["counters"]["scoped"] == 1


# -- spans, export, report ----------------------------------------------------


class TestSpans:
    def test_span_records_calls_and_duration(self):
        obs.set_enabled(True)
        with obs.span("step"):
            pass
        snap = obs.snapshot()
        assert snap["counters"]["span.step.calls"] == 1
        assert snap["counters"]["span.step.total_ns"] >= 0
        assert snap["histograms"]["span.step.us"]["count"] == 1

    def test_jsonl_export_and_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.set_enabled(True)
        obs.set_export_path(str(path))
        with obs.span("outer"):
            obs.counter("work.items").inc(7)
        obs.export_snapshot()
        obs.set_export_path(None)

        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [event["kind"] for event in events]
        assert "span" in kinds and "snapshot" in kinds

        summary = obs_report.summarize(str(path))
        assert summary["spans"]["outer"]["count"] == 1
        assert summary["counters"]["work.items"] == 7
        text = obs_report.format_report(summary)
        assert "outer" in text and "work.items" in text

    def test_report_cli_json_mode(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        obs.set_enabled(True)
        obs.set_export_path(str(path))
        with obs.span("cli"):
            pass
        obs.set_export_path(None)
        assert obs_report.main([str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"]["cli"]["count"] == 1


# -- snapshot merge determinism ----------------------------------------------


class TestSnapshotMerge:
    def test_merge_is_deterministic(self):
        def worker_snap(seed):
            registry = obs.MetricsRegistry()
            registry.counter("rollout.env_steps").inc(10 + seed)
            registry.histogram("wait", min_edge=1.0, n_buckets=4).observe(
                2.0 * (seed + 1)
            )
            return registry.snapshot()

        def merged():
            parent = obs.MetricsRegistry()
            for seed in range(3):
                parent.merge(worker_snap(seed))
            return parent.snapshot()

        assert merged() == merged()
        snap = merged()
        assert snap["counters"]["rollout.env_steps"] == 33
        assert snap["histograms"]["wait"]["count"] == 3

    @pytest.mark.parametrize("engine", ["sharded-pipe", "sharded-shm"])
    def test_sharded_collect_merges_worker_telemetry(self, engine):
        obs.set_enabled(True)
        trainer = make_engine_trainer("single_hop", engine, n_envs=2,
                                      n_workers=2)
        try:
            trainer.train_epoch()
        finally:
            trainer.close()
        snap = obs.snapshot()
        # Worker-side counters (recorded inside the worker processes' own
        # registries) made it back through the control channel and merged.
        assert snap["counters"]["rollout.env_steps"] > 0
        assert snap["counters"]["rollout.episodes"] >= 4
        # Parent-side instrumentation rode along too.
        assert snap["counters"]["train.epochs"] == 1
        assert "span.trainer.rollout.calls" in snap["counters"]

    def test_sharded_telemetry_counts_match_vector(self):
        def epoch_counts(engine):
            obs.reset()
            obs.set_enabled(True)
            trainer = make_engine_trainer("single_hop", engine, n_envs=2,
                                          n_workers=2)
            try:
                trainer.train_epoch()
            finally:
                trainer.close()
            counters = obs.snapshot()["counters"]
            # env_steps (lockstep rounds) is per-collector, so shards with
            # fewer rows legitimately count more rounds; the cross-engine
            # invariants are total row-steps and episodes.
            return {
                name: counters[name]
                for name in ("rollout.env_rows", "rollout.episodes")
            }

        assert epoch_counts("vector") == epoch_counts("sharded-pipe")


# -- trainer integration ------------------------------------------------------


class TestTrainerTelemetry:
    def test_ctde_record_gains_diagnostics(self):
        trainer = make_engine_trainer("single_hop", "serial")
        try:
            record = trainer.train_epoch()
        finally:
            trainer.close()
        for key in ("critic_grad_norm", "actor_grad_norm", "policy_entropy"):
            assert key in record
            assert np.isfinite(record[key])
        assert record["policy_entropy"] >= 0.0

    def test_es_record_gains_fitness_min(self):
        trainer = make_es_trainer("single_hop", "stacked")
        try:
            record = trainer.train_epoch()
        finally:
            trainer.close()
        assert record["fitness_min"] <= record["fitness_mean"]
        assert record["fitness_mean"] <= record["fitness_max"]

    def test_publish_epoch_record_mirrors_gauges(self):
        obs.set_enabled(True)
        publish_epoch_record({"epoch": 3, "total_reward": -1.5,
                              "note": "skip-me"})
        snap = obs.snapshot()
        assert snap["counters"]["train.epochs"] == 1
        assert snap["gauges"]["train.total_reward"] == -1.5
        assert "train.note" not in snap["gauges"]

    def test_format_epoch_summary_covers_both_engines(self):
        mapg = format_epoch_summary({
            "epoch": 1, "total_reward": -2.0, "overflow_ratio": 0.1,
            "critic_loss": 0.5, "actor_loss": 0.2, "policy_entropy": 1.1,
            "actor_grad_norm": 0.3,
        })
        assert "critic" in mapg and "entropy" in mapg and "|g|" in mapg
        es = format_epoch_summary({
            "epoch": 2, "total_reward": -1.0, "overflow_ratio": 0.0,
            "grad_norm": 0.1, **population_fitness_summary([1.0, 2.0]),
        })
        assert "fitness" in es and "|g|" in es

    def test_progress_printer_cadence(self):
        lines = []
        callback = progress_printer(every=2, print_fn=lines.append)
        for epoch in range(1, 6):
            callback({"epoch": epoch, "total_reward": 0.0,
                      "overflow_ratio": 0.0})
        assert len(lines) == 3  # epochs 1, 2, 4


# -- the contract: telemetry never perturbs determinism -----------------------


@pytest.mark.slow
def test_equivalence_harness_with_telemetry_enabled():
    obs.set_enabled(True)
    assert_cross_engine_equivalence(
        "single_hop", ROLLOUT_ENGINES, n_epochs=2, n_envs=1
    )


@pytest.mark.slow
def test_es_equivalence_harness_with_telemetry_enabled():
    obs.set_enabled(True)
    assert_es_cross_engine_equivalence(
        "single_hop", ES_ENGINES, n_generations=2
    )


def test_telemetry_toggle_does_not_change_records():
    def run(enable):
        obs.reset()
        obs.set_enabled(enable)
        trainer = make_engine_trainer("single_hop", "vector", n_envs=2)
        try:
            return [trainer.train_epoch() for _ in range(2)]
        finally:
            trainer.close()

    assert run(False) == run(True)
