"""Unit tests for Pauli-string and Hamiltonian observables."""

import numpy as np
import pytest

from repro.quantum import statevector as sv
from repro.quantum.observables import (
    Hamiltonian,
    PauliString,
    all_z_observables,
    expectation,
)

from tests.helpers import random_state


class TestPauliString:
    def test_identity(self):
        obs = PauliString()
        assert obs.is_identity()
        psi = sv.zero_state(2)
        assert np.allclose(obs.expectation(psi, 2), 1.0)

    def test_explicit_identity_factor_dropped(self):
        obs = PauliString({0: "I", 1: "Z"})
        assert obs.wires == (1,)

    def test_z_constructor(self):
        assert PauliString.z(2).terms == {2: "Z"}

    def test_expectation_matches_matrix(self, rng):
        psi = random_state(rng, 3, batch=4)
        obs = PauliString({0: "X", 2: "Y"})
        via_apply = obs.expectation(psi, 3)
        matrix = obs.matrix(3)
        via_matrix = np.real(
            np.einsum("bi,ij,bj->b", np.conjugate(psi), matrix, psi)
        )
        assert np.allclose(via_apply, via_matrix)

    def test_matrix_of_z0(self):
        assert np.allclose(PauliString.z(0).matrix(2), np.diag([1, 1, -1, -1]))

    def test_matrix_of_z1(self):
        assert np.allclose(PauliString.z(1).matrix(2), np.diag([1, -1, 1, -1]))

    def test_expectation_is_real_and_bounded(self, rng):
        psi = random_state(rng, 3, batch=8)
        obs = PauliString({0: "X", 1: "Z", 2: "Y"})
        values = obs.expectation(psi, 3)
        assert values.dtype.kind == "f"
        assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_duplicate_wire_rejected(self):
        with pytest.raises(ValueError):
            PauliString([(0, "X"), (0, "Z")])

    def test_unknown_pauli_rejected(self):
        with pytest.raises(ValueError):
            PauliString({0: "Q"})

    def test_equality_and_hash(self):
        a = PauliString({1: "X", 0: "Z"})
        b = PauliString([(0, "Z"), (1, "X")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != PauliString({0: "Z"})

    def test_repr(self):
        assert "Z0" in repr(PauliString.z(0))
        assert "I" in repr(PauliString())


class TestHamiltonian:
    def test_expectation_linear_combination(self, rng):
        psi = random_state(rng, 2, batch=3)
        z0, z1 = PauliString.z(0), PauliString.z(1)
        ham = Hamiltonian([0.5, -2.0], [z0, z1])
        expected = 0.5 * z0.expectation(psi, 2) - 2.0 * z1.expectation(psi, 2)
        assert np.allclose(ham.expectation(psi, 2), expected)

    def test_batched_coefficients(self, rng):
        psi = random_state(rng, 2, batch=3)
        z0, z1 = PauliString.z(0), PauliString.z(1)
        coeffs = rng.normal(size=(3, 2))
        ham = Hamiltonian(coeffs, [z0, z1])
        assert ham.batched
        expected = coeffs[:, 0] * z0.expectation(psi, 2) + coeffs[
            :, 1
        ] * z1.expectation(psi, 2)
        assert np.allclose(ham.expectation(psi, 2), expected)

    def test_matrix(self):
        ham = Hamiltonian([1.0, 1.0], [PauliString.z(0), PauliString.z(1)])
        assert np.allclose(ham.matrix(2), np.diag([2, 0, 0, -2]))

    def test_batched_matrix_raises(self):
        ham = Hamiltonian(np.ones((2, 1)), [PauliString.z(0)])
        with pytest.raises(ValueError):
            ham.matrix(1)

    def test_coefficient_count_mismatch(self):
        with pytest.raises(ValueError):
            Hamiltonian([1.0, 2.0], [PauliString.z(0)])

    def test_bad_coefficient_ndim(self):
        with pytest.raises(ValueError):
            Hamiltonian(np.ones((1, 1, 1)), [PauliString.z(0)])


class TestHelpers:
    def test_all_z_observables(self):
        obs = all_z_observables(3)
        assert [o.terms for o in obs] == [{0: "Z"}, {1: "Z"}, {2: "Z"}]

    def test_expectation_stacking(self, rng):
        psi = random_state(rng, 2, batch=5)
        stacked = expectation(psi, all_z_observables(2), 2)
        assert stacked.shape == (5, 2)
        assert np.allclose(stacked[:, 0], sv.expectation_pauli_z(psi, 0, 2))
