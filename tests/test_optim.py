"""Unit tests for the optimisers."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Parameter


def quadratic_step(optimizer, param, target):
    """One gradient step on ||p - target||^2."""
    optimizer.zero_grad()
    diff = param - target
    (diff * diff).sum().backward()
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            quadratic_step(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def distance_after(momentum, steps=25):
            param = Parameter(np.array([10.0]))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(steps):
                quadratic_step(opt, param, np.array([0.0]))
            return abs(param.data[0])

        assert distance_after(0.9) < distance_after(0.0)

    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.ones(1)), Parameter(np.ones(1))
        opt = SGD([a, b], lr=0.1)
        (a * 2).sum().backward()
        opt.step()
        assert a.data[0] != 1.0
        assert b.data[0] == 1.0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr in magnitude.
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.05)
        quadratic_step(opt, param, np.array([0.0]))
        assert abs(1.0 - param.data[0]) == pytest.approx(0.05, rel=1e-3)

    def test_scale_invariance(self):
        # Adam's normalised steps should be nearly identical for scaled losses.
        def run(scale):
            param = Parameter(np.array([4.0]))
            opt = Adam([param], lr=0.1)
            for _ in range(10):
                opt.zero_grad()
                ((param * param).sum() * scale).backward()
                opt.step()
            return param.data[0]

        assert run(1.0) == pytest.approx(run(100.0), abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.1, betas=(1.0, 0.9))

    def test_zero_grad(self):
        param = Parameter(np.ones(2))
        opt = Adam([param], lr=0.1)
        (param * 2).sum().backward()
        opt.zero_grad()
        assert param.grad is None


class TestOptimizerBase:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=2.5)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(1))], 1.0) == 0.0
