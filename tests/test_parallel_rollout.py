"""Determinism, crash-recovery, and lifecycle tests for the process-sharded
rollout subsystem (``repro.marl.parallel``)."""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig
from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import make_vector_env
from repro.marl.actors import ActorGroup, ClassicalActor
from repro.marl.frameworks import build_framework
from repro.marl.parallel import ShardedRolloutCollector
from repro.marl.rollout import VectorRolloutCollector

EPISODE_LIMIT = 5


def single_hop_setup(seed=3):
    """A serial SingleHop env + tiny classical team, deterministically seeded."""
    config = SingleHopConfig(episode_limit=EPISODE_LIMIT)
    env = SingleHopOffloadEnv(config, rng=np.random.default_rng(seed))
    weight_rng = np.random.default_rng(seed + 1)
    actors = ActorGroup(
        [
            ClassicalActor(
                config.observation_size, config.n_actions, (5,), weight_rng
            )
            for _ in range(config.n_agents)
        ]
    )
    return env, actors


def multi_hop_setup(seed=4):
    """A serial MultiHop env + classical team sized to its topology."""
    env = MultiHopOffloadEnv(
        layered_topology((3, 2, 1)),
        rng=np.random.default_rng(seed),
        episode_limit=EPISODE_LIMIT,
    )
    weight_rng = np.random.default_rng(seed + 1)
    actors = ActorGroup(
        [
            ClassicalActor(
                env.observation_size, env.action_space.n, (4,), weight_rng
            )
            for _ in range(env.n_agents)
        ]
    )
    return env, actors


def assert_episodes_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert np.array_equal(a.states, b.states)
        assert np.array_equal(a.observations, b.observations)
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.rewards, b.rewards)
        assert np.array_equal(a.next_states, b.next_states)
        assert np.array_equal(a.dones, b.dones)


def collect_rounds(collector, env, n_episodes, n_rounds, seed=11, greedy=False):
    """Run ``n_rounds`` collects; returns (episodes, stats, rng/env states)."""
    rng = np.random.default_rng(seed)
    episodes, stats = [], []
    for _ in range(n_rounds):
        batch, batch_stats = collector.collect(n_episodes, rng, greedy=greedy)
        episodes.extend(batch)
        stats.extend(batch_stats)
    return episodes, stats, rng.bit_generator.state, env.rng.bit_generator.state


class TestShardedDeterminism:
    @pytest.mark.parametrize("setup", [single_hop_setup, multi_hop_setup])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bit_identical_to_vector_engine(self, setup, n_workers):
        """W workers over N=4 == in-process VectorEnv(4), episode for episode."""
        env_v, actors_v = setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        expected = collect_rounds(reference, env_v, 4, 2)

        env_s, actors_s = setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=4, n_workers=n_workers
        ) as sharded:
            got = collect_rounds(sharded, env_s, 4, 2)

        assert_episodes_equal(expected[0], got[0])
        assert expected[1] == got[1]  # per-episode Fig. 3 stats
        assert expected[2] == got[2]  # shared action stream position
        assert expected[3] == got[3]  # serial env's row-0 stream position

    def test_bit_identical_to_serial_at_n1(self):
        """Transitivity anchor: one row, one worker == the serial oracle."""
        from repro.marl.trainer import rollout_episode

        env_ref, actors_ref = single_hop_setup()
        rng_ref = np.random.default_rng(11)
        expected = [
            rollout_episode(env_ref, actors_ref, rng_ref) for _ in range(3)
        ]

        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=1, n_workers=1
        ) as sharded:
            rng_s = np.random.default_rng(11)
            episodes, stats = sharded.collect(3, rng_s)
        assert_episodes_equal([e for e, _ in expected], episodes)
        assert [s for _, s in expected] == stats
        assert rng_ref.bit_generator.state == rng_s.bit_generator.state

    def test_quota_below_copy_count_discards_surplus_identically(self):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=4, n_workers=2
        ) as sharded:
            expected = collect_rounds(reference, env_v, 3, 2)
            got = collect_rounds(sharded, env_s, 3, 2)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    def test_greedy_collection_matches_vector(self):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=4, n_workers=2
        ) as sharded:
            expected = collect_rounds(reference, env_v, 4, 1, greedy=True)
            got = collect_rounds(sharded, env_s, 4, 1, greedy=True)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    def test_weight_updates_reach_workers(self):
        """Mutating parent actor weights changes the next sharded collect."""
        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=2, n_workers=2
        ) as sharded:
            first, _ = sharded.collect(2, np.random.default_rng(0))
            for p in actors_s.parameters():
                p.data += np.random.default_rng(1).normal(
                    scale=0.5, size=p.data.shape
                )
            second, _ = sharded.collect(2, np.random.default_rng(0))
        same_weights_same_stream = np.array_equal(
            first[0].actions, second[0].actions
        )
        assert not same_weights_same_stream


class TestCrashRecovery:
    @pytest.mark.parametrize("during_next_collect", [False, True])
    def test_crash_restart_loses_no_episodes(self, during_next_collect):
        """A killed worker is restarted and its block replayed bit-exactly."""
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=4, n_workers=2
        ) as sharded:
            rng_v = np.random.default_rng(11)
            rng_s = np.random.default_rng(11)
            expected_1 = reference.collect(4, rng_v)
            got_1 = sharded.collect(4, rng_s)
            sharded.debug_crash_worker(
                0, during_next_collect=during_next_collect
            )
            expected_2 = reference.collect(4, rng_v)
            got_2 = sharded.collect(4, rng_s)
            assert sharded.total_restarts == 1
        assert_episodes_equal(expected_1[0] + expected_2[0], got_1[0] + got_2[0])
        assert expected_1[1] + expected_2[1] == got_1[1] + got_2[1]
        assert rng_v.bit_generator.state == rng_s.bit_generator.state

    def test_worker_task_error_poisons_pool(self):
        """A deterministic in-worker error propagates and closes the pool:
        replaying it cannot help, and leaving the pool open could pair the
        next command with a stale queued reply."""
        from repro.marl.actors import RandomActor
        from repro.marl.parallel import WorkerTaskError

        env, _ = single_hop_setup()
        group = ActorGroup([RandomActor(4) for _ in range(4)])
        sharded = ShardedRolloutCollector(env, group, n_envs=2, n_workers=2)
        processes = [w.process for w in sharded._workers]
        with pytest.raises(WorkerTaskError, match="greedy"):
            # RandomActor has no greedy mode; the worker raises inside
            # act_batch, exactly as the in-process engine would in-line.
            sharded.collect(2, np.random.default_rng(0), greedy=True)
        assert sharded._closed
        assert all(p is None or not p.is_alive() for p in processes)
        with pytest.raises(RuntimeError, match="closed"):
            sharded.collect(2, np.random.default_rng(0))

    def test_crash_before_first_collect(self):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 2), actors_v)
        env_s, actors_s = single_hop_setup()
        with ShardedRolloutCollector(
            env_s, actors_s, n_envs=2, n_workers=2
        ) as sharded:
            sharded.debug_crash_worker(1)
            expected = reference.collect(2, np.random.default_rng(5))
            got = sharded.collect(2, np.random.default_rng(5))
            assert sharded.total_restarts == 1
        assert_episodes_equal(expected[0], got[0])
        assert expected[1] == got[1]


class TestLifecycle:
    def test_close_leaves_no_processes(self):
        env, actors = single_hop_setup()
        sharded = ShardedRolloutCollector(env, actors, n_envs=2, n_workers=2)
        processes = [w.process for w in sharded._workers]
        assert all(p.is_alive() for p in processes)
        sharded.close()
        assert all(p is None or not p.is_alive() for p in processes)
        assert all(w.process is None for w in sharded._workers)
        sharded.close()  # idempotent
        with pytest.raises(RuntimeError):
            sharded.collect(1, np.random.default_rng(0))

    def test_ping(self):
        env, actors = single_hop_setup()
        with ShardedRolloutCollector(
            env, actors, n_envs=3, n_workers=2
        ) as sharded:
            assert sharded.ping() == 2

    def test_workers_clamped_to_envs(self):
        env, actors = single_hop_setup()
        with ShardedRolloutCollector(
            env, actors, n_envs=2, n_workers=8
        ) as sharded:
            assert sharded.n_workers == 2

    def test_invalid_arguments(self):
        env, actors = single_hop_setup()
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, actors, n_envs=0, n_workers=1)
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, actors, n_envs=2, n_workers=0)
        group = ActorGroup([ClassicalActor(4, 4, (), np.random.default_rng(0))])
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, group, n_envs=2, n_workers=1)


class TestTrainerIntegration:
    def trainer_setup(self, seed=5, **train_overrides):
        from repro.marl.critics import ClassicalCentralCritic
        from repro.marl.trainer import CTDETrainer

        env, actors = single_hop_setup(seed)
        critic_rng = np.random.default_rng(seed + 7)
        critic = ClassicalCentralCritic(env.config.state_size, (4,), critic_rng)
        target = ClassicalCentralCritic(
            env.config.state_size, (4,), np.random.default_rng(seed + 8)
        )
        defaults = {
            "n_epochs": 2,
            "episodes_per_epoch": 4,
            "actor_lr": 1e-2,
            "critic_lr": 1e-2,
            "rollout_envs": 4,
        }
        defaults.update(train_overrides)
        config = TrainingConfig(**defaults)
        return CTDETrainer(
            env, actors, critic, target, config, np.random.default_rng(seed)
        )

    def test_sharded_train_epoch_bit_identical_to_vector(self):
        vector = self.trainer_setup(rollout_mode="vector")
        sharded = self.trainer_setup(rollout_mode="auto", rollout_workers=2)
        assert sharded.sharded_rollouts and not vector.sharded_rollouts
        try:
            for _ in range(3):
                assert vector.train_epoch() == sharded.train_epoch()
        finally:
            sharded.close()

    def test_forced_sharded_mode_single_worker(self):
        vector = self.trainer_setup(rollout_mode="vector")
        sharded = self.trainer_setup(rollout_mode="sharded", rollout_workers=1)
        assert sharded.sharded_rollouts
        try:
            assert vector.train_epoch() == sharded.train_epoch()
        finally:
            sharded.close()

    def test_workers_clamped_to_rollout_envs(self):
        trainer = self.trainer_setup(
            episodes_per_epoch=2, rollout_envs=2, rollout_workers=16
        )
        assert trainer.rollout_workers == 2
        trainer.close()  # no pool was ever started; must still be safe

    def test_close_shuts_down_pool_and_allows_rebuild(self):
        trainer = self.trainer_setup(rollout_mode="sharded", rollout_workers=2)
        trainer.train_epoch()
        pool = trainer._sharded_collector
        assert pool is not None
        trainer.close()
        assert trainer._sharded_collector is None
        assert all(w.process is None for w in pool._workers)
        # A later epoch lazily rebuilds a fresh pool.  Documented caveat:
        # the rebuilt pool is seed-deterministic but not bit-continuous
        # with the uninterrupted run (close is end-of-collection, not a
        # pause) — here we only assert the rebuild itself works.
        trainer.train_epoch()
        assert trainer._sharded_collector is not pool
        trainer.close()

    def test_quantum_framework_sharded_matches_vector(self):
        env_config = SingleHopConfig(episode_limit=4)

        def run(mode, workers):
            train = TrainingConfig(
                episodes_per_epoch=2,
                actor_lr=1e-3,
                critic_lr=1e-3,
                rollout_envs=2,
                rollout_workers=workers,
                rollout_mode=mode,
            )
            framework = build_framework(
                "proposed", seed=7, env_config=env_config, train_config=train
            )
            with framework:
                records = [framework.trainer.train_epoch() for _ in range(2)]
                evaluation = framework.evaluate(n_episodes=2)
            return records, evaluation

        assert run("vector", 1) == run("sharded", 2)
