"""Determinism, crash-recovery, and lifecycle tests for the process-sharded
rollout subsystem (``repro.marl.parallel``), over both transition
transports (pickle-pipe and shared-memory ring)."""

import os

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig
from repro.envs.vector import make_vector_env
from repro.marl.actors import ActorGroup, ClassicalActor
from repro.marl.frameworks import build_framework
from repro.marl.parallel import ShardedRolloutCollector
from repro.marl.rollout import VectorRolloutCollector

from tests.helpers import (
    OFFLOAD_ENV_KINDS,
    RAGGED_ENV_KINDS,
    ROLLOUT_ENGINES,
    assert_cross_engine_equivalence,
    assert_episodes_equal,
    make_classical_team,
    make_offload_env,
)

EPISODE_LIMIT = 5
TRANSPORTS = ("pipe", "shm")
# Tiny rings so even these toy episodes exercise multi-slot frames, wraps,
# and the backpressure path rather than fitting the whole collect at once.
SMALL_RING = {"shm_slot_bytes": 256, "shm_slots": 8}


def engine_setup(env_kind, seed=3):
    """A serial env + tiny classical team, deterministically seeded."""
    env = make_offload_env(env_kind, seed, episode_limit=EPISODE_LIMIT)
    return env, make_classical_team(env, seed + 1)


def single_hop_setup(seed=3):
    return engine_setup("single_hop", seed)


def sharded(env, actors, n_envs, n_workers, transport="pipe", **kwargs):
    if transport == "shm":
        kwargs = {**SMALL_RING, **kwargs}
    return ShardedRolloutCollector(
        env, actors, n_envs=n_envs, n_workers=n_workers,
        transport=transport, **kwargs,
    )


def collect_rounds(collector, env, n_episodes, n_rounds, seed=11, greedy=False):
    """Run ``n_rounds`` collects; returns (episodes, stats, rng/env states)."""
    rng = np.random.default_rng(seed)
    episodes, stats = [], []
    for _ in range(n_rounds):
        batch, batch_stats = collector.collect(n_episodes, rng, greedy=greedy)
        episodes.extend(batch)
        stats.extend(batch_stats)
    return episodes, stats, rng.bit_generator.state, env.rng.bit_generator.state


def assert_segments_released(names):
    """Every shm segment named must be gone from the system after close."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return
    leaked = [name for name in names if os.path.exists(f"/dev/shm/{name}")]
    assert not leaked, f"orphaned shared-memory segments: {leaked}"


class TestCrossEngineEquivalence:
    """The unified harness: one ``train_epoch`` contract for all engines."""

    @pytest.mark.parametrize("env_kind", OFFLOAD_ENV_KINDS)
    def test_four_way_chain_at_n1(self, env_kind):
        """serial == vector == sharded-pipe == sharded-shm at one env copy:
        bit-identical episodes, metrics, and RNG stream positions."""
        assert_cross_engine_equivalence(
            env_kind, ROLLOUT_ENGINES, n_envs=1, n_workers=1
        )

    @pytest.mark.parametrize("env_kind", OFFLOAD_ENV_KINDS)
    def test_batched_engines_at_n4(self, env_kind):
        """vector(4) == sharded-pipe(4, W=2) == sharded-shm(4, W=2)."""
        assert_cross_engine_equivalence(
            env_kind,
            ("vector", "sharded-pipe", "sharded-shm"),
            n_envs=4,
            n_workers=2,
        )

    def test_uneven_shards(self):
        """Worker counts that split N unevenly keep the chain intact."""
        assert_cross_engine_equivalence(
            "single_hop",
            ("vector", "sharded-pipe", "sharded-shm"),
            n_envs=4,
            n_workers=3,
        )


class TestShardedDeterminism:
    @pytest.mark.parametrize("env_kind", OFFLOAD_ENV_KINDS)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bit_identical_to_vector_engine(self, env_kind, transport,
                                            n_workers):
        """W workers over N=4 == in-process VectorEnv(4), episode for
        episode, over either transport."""
        env_v, actors_v = engine_setup(env_kind)
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        expected = collect_rounds(reference, env_v, 4, 2)

        env_s, actors_s = engine_setup(env_kind)
        with sharded(env_s, actors_s, 4, n_workers, transport) as pool:
            got = collect_rounds(pool, env_s, 4, 2)

        assert_episodes_equal(expected[0], got[0])
        assert expected[1] == got[1]  # per-episode Fig. 3 stats
        assert expected[2] == got[2]  # shared action stream position
        assert expected[3] == got[3]  # serial env's row-0 stream position

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_bit_identical_to_serial_at_n1(self, transport):
        """Transitivity anchor: one row, one worker == the serial oracle."""
        from repro.marl.trainer import rollout_episode

        env_ref, actors_ref = single_hop_setup()
        rng_ref = np.random.default_rng(11)
        expected = [
            rollout_episode(env_ref, actors_ref, rng_ref) for _ in range(3)
        ]

        env_s, actors_s = single_hop_setup()
        with sharded(env_s, actors_s, 1, 1, transport) as pool:
            rng_s = np.random.default_rng(11)
            episodes, stats = pool.collect(3, rng_s)
        assert_episodes_equal([e for e, _ in expected], episodes)
        assert [s for _, s in expected] == stats
        assert rng_ref.bit_generator.state == rng_s.bit_generator.state

    def test_quota_below_copy_count_discards_surplus_identically(self):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with sharded(env_s, actors_s, 4, 2) as pool:
            expected = collect_rounds(reference, env_v, 3, 2)
            got = collect_rounds(pool, env_s, 3, 2)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    def test_greedy_collection_matches_vector(self):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with sharded(env_s, actors_s, 4, 2) as pool:
            expected = collect_rounds(reference, env_v, 4, 1, greedy=True)
            got = collect_rounds(pool, env_s, 4, 1, greedy=True)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_weight_updates_reach_workers(self, transport):
        """Mutating parent actor weights changes the next sharded collect."""
        env_s, actors_s = engine_setup("single_hop")
        with sharded(env_s, actors_s, 2, 2, transport) as pool:
            first, _ = pool.collect(2, np.random.default_rng(0))
            for p in actors_s.parameters():
                p.data += np.random.default_rng(1).normal(
                    scale=0.5, size=p.data.shape
                )
            second, _ = pool.collect(2, np.random.default_rng(0))
        same_weights_same_stream = np.array_equal(
            first[0].actions, second[0].actions
        )
        assert not same_weights_same_stream


class TestTransportSelection:
    def test_auto_picks_pipe_for_tiny_blocks(self):
        env, actors = single_hop_setup()
        with ShardedRolloutCollector(
            env, actors, n_envs=2, n_workers=2, transport="auto"
        ) as pool:
            # 5-step toy episodes are far below the shm crossover.
            assert pool.transport == "pipe"
            assert pool.shm_segment_names() == []

    def test_auto_picks_shm_for_large_blocks(self):
        from repro.marl.parallel import (
            AUTO_SHM_MIN_BLOCK_BYTES,
            estimate_episode_block_bytes,
        )

        env = make_offload_env("single_hop", 3, episode_limit=200)
        actors = make_classical_team(env, 4)
        assert (
            estimate_episode_block_bytes(env, 200)
            >= AUTO_SHM_MIN_BLOCK_BYTES
        )
        with ShardedRolloutCollector(
            env, actors, n_envs=2, n_workers=2, transport="auto"
        ) as pool:
            assert pool.transport == "shm"
            assert len(pool.shm_segment_names()) == 2

    def test_unknown_transport_rejected(self):
        env, actors = single_hop_setup()
        with pytest.raises(ValueError, match="transport"):
            ShardedRolloutCollector(
                env, actors, n_envs=2, n_workers=2, transport="tcp"
            )

    def test_blocks_larger_than_ring_stream_through(self):
        """A ring far smaller than one episode block still round-trips
        bit-exactly via chunk frames (the backpressure path)."""
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 2), actors_v)
        env_s, actors_s = single_hop_setup()
        with sharded(
            env_s, actors_s, 2, 2, "shm",
            shm_slot_bytes=64, shm_slots=2,
        ) as pool:
            expected = collect_rounds(reference, env_v, 2, 2)
            got = collect_rounds(pool, env_s, 2, 2)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]


class TestCrashRecovery:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("during_next_collect", [False, True])
    def test_crash_restart_loses_no_episodes(self, transport,
                                             during_next_collect):
        """A killed worker is restarted and its block replayed bit-exactly —
        no episode lost or duplicated — and (for shm) its segments are
        reclaimed by the replacement, then released on close."""
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = single_hop_setup()
        with sharded(env_s, actors_s, 4, 2, transport) as pool:
            segment_names = pool.shm_segment_names()
            rng_v = np.random.default_rng(11)
            rng_s = np.random.default_rng(11)
            expected_1 = reference.collect(4, rng_v)
            got_1 = pool.collect(4, rng_s)
            pool.debug_crash_worker(
                0, during_next_collect=during_next_collect
            )
            expected_2 = reference.collect(4, rng_v)
            got_2 = pool.collect(4, rng_s)
            assert pool.total_restarts == 1
            # The restarted worker reuses its predecessor's segments; no new
            # allocation, nothing orphaned by the dead process.
            assert pool.shm_segment_names() == segment_names
        assert_episodes_equal(expected_1[0] + expected_2[0], got_1[0] + got_2[0])
        assert expected_1[1] + expected_2[1] == got_1[1] + got_2[1]
        assert rng_v.bit_generator.state == rng_s.bit_generator.state
        assert_segments_released(segment_names)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_worker_task_error_poisons_pool(self, transport):
        """A deterministic in-worker error propagates and closes the pool:
        replaying it cannot help, and leaving the pool open could pair the
        next command with a stale queued reply."""
        from repro.marl.actors import RandomActor
        from repro.marl.parallel import WorkerTaskError

        env, _ = single_hop_setup()
        group = ActorGroup([RandomActor(4) for _ in range(4)])
        pool = sharded(env, group, 2, 2, transport)
        segment_names = pool.shm_segment_names()
        processes = [w.process for w in pool._workers]
        with pytest.raises(WorkerTaskError, match="greedy"):
            # RandomActor has no greedy mode; the worker raises inside
            # act_batch, exactly as the in-process engine would in-line.
            pool.collect(2, np.random.default_rng(0), greedy=True)
        assert pool._closed
        assert all(p is None or not p.is_alive() for p in processes)
        with pytest.raises(RuntimeError, match="closed"):
            pool.collect(2, np.random.default_rng(0))
        assert_segments_released(segment_names)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_crash_before_first_collect(self, transport):
        env_v, actors_v = single_hop_setup()
        reference = VectorRolloutCollector(make_vector_env(env_v, 2), actors_v)
        env_s, actors_s = single_hop_setup()
        with sharded(env_s, actors_s, 2, 2, transport) as pool:
            pool.debug_crash_worker(1)
            expected = reference.collect(2, np.random.default_rng(5))
            got = pool.collect(2, np.random.default_rng(5))
            assert pool.total_restarts == 1
        assert_episodes_equal(expected[0], got[0])
        assert expected[1] == got[1]


class TestLifecycle:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_close_leaves_no_processes_or_segments(self, transport):
        env, actors = single_hop_setup()
        pool = sharded(env, actors, 2, 2, transport)
        segment_names = pool.shm_segment_names()
        if transport == "shm":
            assert len(segment_names) == 2
            if os.path.isdir("/dev/shm"):
                assert all(
                    os.path.exists(f"/dev/shm/{name}")
                    for name in segment_names
                )
        processes = [w.process for w in pool._workers]
        assert all(p.is_alive() for p in processes)
        pool.close()
        assert all(p is None or not p.is_alive() for p in processes)
        assert all(w.process is None for w in pool._workers)
        assert_segments_released(segment_names)
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.collect(1, np.random.default_rng(0))

    def test_ping(self):
        env, actors = single_hop_setup()
        with sharded(env, actors, 3, 2) as pool:
            assert pool.ping() == 2

    def test_workers_clamped_to_envs(self):
        env, actors = single_hop_setup()
        with sharded(env, actors, 2, 8) as pool:
            assert pool.n_workers == 2

    def test_invalid_arguments(self):
        env, actors = single_hop_setup()
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, actors, n_envs=0, n_workers=1)
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, actors, n_envs=2, n_workers=0)
        group = ActorGroup([ClassicalActor(4, 4, (), np.random.default_rng(0))])
        with pytest.raises(ValueError):
            ShardedRolloutCollector(env, group, n_envs=2, n_workers=1)


class TestTrainerIntegration:
    def trainer_setup(self, seed=5, **train_overrides):
        from repro.marl.critics import ClassicalCentralCritic
        from repro.marl.trainer import CTDETrainer

        env, actors = single_hop_setup(seed)
        critic_rng = np.random.default_rng(seed + 7)
        critic = ClassicalCentralCritic(env.config.state_size, (4,), critic_rng)
        target = ClassicalCentralCritic(
            env.config.state_size, (4,), np.random.default_rng(seed + 8)
        )
        defaults = {
            "n_epochs": 2,
            "episodes_per_epoch": 4,
            "actor_lr": 1e-2,
            "critic_lr": 1e-2,
            "rollout_envs": 4,
        }
        defaults.update(train_overrides)
        config = TrainingConfig(**defaults)
        return CTDETrainer(
            env, actors, critic, target, config, np.random.default_rng(seed)
        )

    def test_auto_mode_engages_sharded_engine(self):
        """rollout_mode='auto' with workers > 1 dispatches to the worker
        pool (and stays bit-identical to the vector engine)."""
        vector = self.trainer_setup(rollout_mode="vector")
        auto = self.trainer_setup(rollout_mode="auto", rollout_workers=2)
        assert auto.sharded_rollouts and not vector.sharded_rollouts
        try:
            assert vector.train_epoch() == auto.train_epoch()
        finally:
            auto.close()

    def test_forced_sharded_mode_single_worker(self):
        vector = self.trainer_setup(rollout_mode="vector")
        sharded_trainer = self.trainer_setup(
            rollout_mode="sharded", rollout_workers=1
        )
        assert sharded_trainer.sharded_rollouts
        try:
            assert vector.train_epoch() == sharded_trainer.train_epoch()
        finally:
            sharded_trainer.close()

    def test_trainer_respects_transport_config(self):
        trainer = self.trainer_setup(
            rollout_mode="sharded", rollout_workers=2, rollout_transport="shm"
        )
        try:
            trainer.train_epoch()
            assert trainer._sharded_collector.transport == "shm"
        finally:
            trainer.close()

    def test_workers_clamped_to_rollout_envs(self):
        trainer = self.trainer_setup(
            episodes_per_epoch=2, rollout_envs=2, rollout_workers=16
        )
        assert trainer.rollout_workers == 2
        trainer.close()  # no pool was ever started; must still be safe

    def test_close_shuts_down_pool_and_allows_rebuild(self):
        trainer = self.trainer_setup(rollout_mode="sharded", rollout_workers=2)
        trainer.train_epoch()
        pool = trainer._sharded_collector
        assert pool is not None
        trainer.close()
        assert trainer._sharded_collector is None
        assert all(w.process is None for w in pool._workers)
        # A later epoch lazily rebuilds a fresh pool.  Documented caveat:
        # the rebuilt pool is seed-deterministic but not bit-continuous
        # with the uninterrupted run (close is end-of-collection, not a
        # pause) — here we only assert the rebuild itself works.
        trainer.train_epoch()
        assert trainer._sharded_collector is not pool
        trainer.close()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_quantum_framework_sharded_matches_vector(self, transport):
        env_config = SingleHopConfig(episode_limit=4)

        def run(mode, workers, rollout_transport):
            train = TrainingConfig(
                episodes_per_epoch=2,
                actor_lr=1e-3,
                critic_lr=1e-3,
                rollout_envs=2,
                rollout_workers=workers,
                rollout_mode=mode,
                rollout_transport=rollout_transport,
            )
            framework = build_framework(
                "proposed", seed=7, env_config=env_config, train_config=train
            )
            with framework:
                records = [framework.trainer.train_epoch() for _ in range(2)]
                evaluation = framework.evaluate(n_episodes=2)
            return records, evaluation

        assert run("vector", 1, "auto") == run("sharded", 2, transport)


class TestEpisodeLimitResolution:
    """The collector resolves the horizon cap explicitly (regression:
    ``int(limit or 0)`` used to conflate an absent limit with zero)."""

    class _NoLimitEnv:
        n_agents = 2
        observation_size = 3
        state_size = 6

    def test_missing_limit_everywhere_rejected(self):
        actors = ActorGroup(
            [ClassicalActor(3, 4, (), np.random.default_rng(0))
             for _ in range(2)]
        )
        with pytest.raises(ValueError, match="horizon cap"):
            ShardedRolloutCollector(
                self._NoLimitEnv(), actors, n_envs=2, n_workers=1
            )

    def test_env_attribute_wins_over_config(self):
        env, actors = single_hop_setup()
        # MultiHop-style: the limit lives on the env itself; a conflicting
        # config value must not shadow it.
        env.episode_limit = EPISODE_LIMIT
        with sharded(env, actors, 2, 1) as pool:
            assert pool.episode_limit == EPISODE_LIMIT

    def test_limit_one_is_a_valid_cap(self):
        """An episode_limit of 1 is a degenerate but legal horizon — it
        must not be mistaken for 'absent'."""
        env_v = make_offload_env("single_hop", 3, episode_limit=1)
        actors_v = make_classical_team(env_v, 4)
        reference = VectorRolloutCollector(make_vector_env(env_v, 2), actors_v)
        env_s = make_offload_env("single_hop", 3, episode_limit=1)
        actors_s = make_classical_team(env_s, 4)
        with sharded(env_s, actors_s, 2, 2) as pool:
            assert pool.episode_limit == 1
            expected = collect_rounds(reference, env_v, 2, 1)
            got = collect_rounds(pool, env_s, 2, 1)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]


class TestRaggedEpisodes:
    """The ragged round protocol: data-dependent termination across the
    full engine chain, bit-identical to the in-process reference."""

    @pytest.mark.parametrize("env_kind", RAGGED_ENV_KINDS)
    def test_four_way_chain_ragged_at_n1(self, env_kind):
        """serial == vector == sharded-pipe == sharded-shm on the ragged
        env family, one copy: episodes, metrics, RNG positions."""
        assert_cross_engine_equivalence(
            env_kind, ROLLOUT_ENGINES, n_envs=1, n_workers=1
        )

    @pytest.mark.parametrize("env_kind", RAGGED_ENV_KINDS)
    def test_batched_engines_ragged_at_n4(self, env_kind):
        assert_cross_engine_equivalence(
            env_kind,
            ("vector", "sharded-pipe", "sharded-shm"),
            n_envs=4,
            n_workers=2,
        )

    def test_uneven_shards_ragged(self):
        assert_cross_engine_equivalence(
            "single_hop_ragged",
            ("vector", "sharded-pipe", "sharded-shm"),
            n_envs=4,
            n_workers=3,
        )

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_ragged_bit_identical_to_vector_engine(self, transport,
                                                   n_workers):
        env_v, actors_v = engine_setup("single_hop_ragged")
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        expected = collect_rounds(reference, env_v, 4, 2)

        env_s, actors_s = engine_setup("single_hop_ragged")
        with sharded(env_s, actors_s, 4, n_workers, transport) as pool:
            assert pool.ragged
            got = collect_rounds(pool, env_s, 4, 2)

        assert_episodes_equal(expected[0], got[0])
        assert expected[1] == got[1]
        assert expected[2] == got[2]
        assert expected[3] == got[3]
        # The family must genuinely vary in length, or this pins nothing.
        assert len({s["length"] for s in expected[1]}) > 1

    def test_ragged_quota_below_copy_count(self):
        """Surplus episodes from the final ragged round are discarded
        identically by both engines."""
        env_v, actors_v = engine_setup("single_hop_ragged")
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = engine_setup("single_hop_ragged")
        with sharded(env_s, actors_s, 4, 2) as pool:
            expected = collect_rounds(reference, env_v, 3, 2)
            got = collect_rounds(pool, env_s, 3, 2)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    def test_ragged_quota_above_copy_count(self):
        """Quotas needing several probe extensions stay bit-identical (the
        negotiation path: first bound ceil(n/N) is far too short when many
        episodes run to the horizon)."""
        env_v, actors_v = engine_setup("single_hop_ragged")
        reference = VectorRolloutCollector(make_vector_env(env_v, 2), actors_v)
        env_s, actors_s = engine_setup("single_hop_ragged")
        with sharded(env_s, actors_s, 2, 2) as pool:
            expected = collect_rounds(reference, env_v, 7, 2)
            got = collect_rounds(pool, env_s, 7, 2)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("during_next_collect", [False, True])
    def test_ragged_crash_restart_loses_no_episodes(self, transport,
                                                    during_next_collect):
        """A worker killed mid-ragged-collect is replayed bit-exactly —
        multi-exchange probing included — and shm segments survive the
        restart and are released on close."""
        env_v, actors_v = engine_setup("single_hop_ragged")
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = engine_setup("single_hop_ragged")
        with sharded(env_s, actors_s, 4, 2, transport) as pool:
            segment_names = pool.shm_segment_names()
            rng_v = np.random.default_rng(11)
            rng_s = np.random.default_rng(11)
            expected_1 = reference.collect(4, rng_v)
            got_1 = pool.collect(4, rng_s)
            pool.debug_crash_worker(
                0, during_next_collect=during_next_collect
            )
            expected_2 = reference.collect(4, rng_v)
            got_2 = pool.collect(4, rng_s)
            assert pool.total_restarts == 1
            assert pool.shm_segment_names() == segment_names
        assert_episodes_equal(
            expected_1[0] + expected_2[0], got_1[0] + got_2[0]
        )
        assert expected_1[1] + expected_2[1] == got_1[1] + got_2[1]
        assert rng_v.bit_generator.state == rng_s.bit_generator.state
        assert_segments_released(segment_names)

    def test_ragged_greedy_collection_matches_vector(self):
        env_v, actors_v = engine_setup("single_hop_ragged")
        reference = VectorRolloutCollector(make_vector_env(env_v, 4), actors_v)
        env_s, actors_s = engine_setup("single_hop_ragged")
        with sharded(env_s, actors_s, 4, 2) as pool:
            expected = collect_rounds(reference, env_v, 4, 1, greedy=True)
            got = collect_rounds(pool, env_s, 4, 1, greedy=True)
        assert_episodes_equal(expected[0], got[0])
        assert expected[1:] == got[1:]

    def test_fixed_envs_keep_the_fast_path(self):
        """Non-ragged envs must not pay the probe protocol: the collector
        stays on the one-command fast path."""
        env, actors = single_hop_setup()
        with sharded(env, actors, 4, 2) as pool:
            assert not pool.ragged
