"""Equivalence and structure tests for the program-compiled kernel tier.

The contract under test: :class:`repro.quantum.program.CircuitProgram`
execution (fused diagonal / gather / dense kernels) and the
program-compiled adjoint sweep are numerically identical — ``allclose`` at
1e-12, usually bit-identical — to the interpreted per-gate reference path,
across every registered gate, batched encoding angles and 2-D per-sample
weights.  Fusion must never merge across an input-dependent operation.
"""

import numpy as np
import pytest

from repro.quantum import backend as qback
from repro.quantum import program as qprog
from repro.quantum.backends import StatevectorBackend
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.compile import CompiledCircuit
from repro.quantum.encoding import DataReuploadingEncoding, AngleEncoding
from repro.quantum.gates import GATE_REGISTRY
from repro.quantum.gradients import adjoint_backward
from repro.quantum.observables import Hamiltonian, PauliString, all_z_observables
from repro.quantum.program import (
    CircuitProgram,
    compile_program,
    using_program,
)
from repro.quantum.vqc import build_vqc

ATOL = 1e-12

# Every array backend importable here: always ["numpy", "mock"], plus
# cupy / torch when installed.  The equivalence suites below run once per
# backend — the interpreted oracle always stays on host numpy, so each
# parametrization pins "program tier on backend X == interpreted numpy".
ARRAY_BACKENDS = qback.available_array_backends()


@pytest.fixture(params=ARRAY_BACKENDS)
def array_backend(request):
    with qback.using_array_backend(request.param):
        yield qback.get_array_backend(request.param)


def _interpreted():
    return StatevectorBackend(program=False)


def _all_gates_circuit():
    """One circuit touching every gate in the registry, mixed param kinds."""
    circuit = QuantumCircuit(4)
    circuit.add("i", (1,))
    circuit.add("x", (0,))
    circuit.add("y", (2,))
    circuit.add("z", (3,))
    circuit.add("h", (0,))
    circuit.add("s", (1,))
    circuit.add("t", (2,))
    circuit.add("cnot", (2, 0))
    circuit.add("cz", (1, 3))
    circuit.add("swap", (0, 3))
    circuit.add("toffoli", (3, 1, 2))
    circuit.add("rx", (0,), ParameterRef.input(0, scale=np.pi))
    circuit.add("ry", (1,), ParameterRef.input(1, scale=0.5))
    circuit.add("rz", (2,), ParameterRef.input(2))
    circuit.add("crx", (3, 1), ParameterRef.weight(0))
    circuit.add("cry", (0, 2), ParameterRef.weight(1, scale=2.0))
    circuit.add("crz", (2, 3), ParameterRef.weight(2))
    circuit.add("rx", (1,), ParameterRef.fixed(0.3))
    circuit.add("rz", (0,), ParameterRef.weight(3))
    circuit.add("cnot", (0, 1))
    circuit.add("cnot", (1, 2))
    circuit.add("cnot", (2, 3))
    assert set(circuit.gate_counts()) == set(GATE_REGISTRY)
    return circuit


def _random_circuit(rng, n_qubits=4, n_ops=40):
    """Random circuit over the full registry with random parameter kinds."""
    names = list(GATE_REGISTRY)
    circuit = QuantumCircuit(n_qubits)
    n_weights = 0
    for _ in range(n_ops):
        spec = GATE_REGISTRY[names[rng.integers(len(names))]]
        if spec.n_qubits > n_qubits:
            continue
        wires = tuple(
            rng.choice(n_qubits, size=spec.n_qubits, replace=False).tolist()
        )
        param = None
        if spec.n_params:
            kind = rng.integers(3)
            if kind == 0:
                param = ParameterRef.input(
                    int(rng.integers(4)), scale=float(rng.uniform(0.5, 2.0))
                )
            elif kind == 1:
                param = ParameterRef.weight(
                    n_weights, scale=float(rng.uniform(0.5, 2.0))
                )
                n_weights += 1
            else:
                param = ParameterRef.fixed(float(rng.uniform(-np.pi, np.pi)))
        circuit.add(spec.name, wires, param)
    return circuit, n_weights


@pytest.mark.usefixtures("array_backend")
class TestProgramEquivalence:
    def test_all_registered_gates(self, rng):
        circuit = _all_gates_circuit()
        inputs = rng.uniform(size=(6, 3))
        weights = rng.uniform(-np.pi, np.pi, size=4)
        exact = _interpreted().evolve(circuit, inputs, weights)
        out = compile_program(circuit).evolve(inputs, weights, batch_size=6)
        assert np.allclose(qback.to_host(out), exact, atol=ATOL)

    def test_all_gates_per_sample_weights(self, rng):
        circuit = _all_gates_circuit()
        inputs = rng.uniform(size=(5, 3))
        weights = rng.uniform(-np.pi, np.pi, size=(5, 4))
        exact = _interpreted().evolve(circuit, inputs, weights)
        out = compile_program(circuit).evolve(inputs, weights, batch_size=5)
        assert np.allclose(qback.to_host(out), exact, atol=ATOL)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        circuit, n_weights = _random_circuit(rng)
        inputs = rng.uniform(size=(4, 4))
        weights = rng.uniform(-np.pi, np.pi, size=max(n_weights, 1))
        exact = _interpreted().evolve(circuit, inputs, weights)
        out = compile_program(circuit).evolve(inputs, weights, batch_size=4)
        assert np.allclose(qback.to_host(out), exact, atol=ATOL)

    def test_standard_vqc_batched_encoding(self, rng):
        vqc = build_vqc(4, 16, 50, seed=7)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(9, 16))
        exact = _interpreted().run(vqc.circuit, vqc.observables, inputs, weights)
        program_out = StatevectorBackend(program=True).run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert np.allclose(program_out, exact, atol=ATOL)

    def test_backend_follows_global_switch(self, rng):
        vqc = build_vqc(3, 3, 9, seed=2)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(2, 3))
        backend = StatevectorBackend()
        with using_program(False):
            interpreted = backend.run(vqc.circuit, vqc.observables, inputs, weights)
        with using_program(True):
            compiled = backend.run(vqc.circuit, vqc.observables, inputs, weights)
        assert np.allclose(compiled, interpreted, atol=ATOL)

    def test_weights_required_error_matches(self):
        circuit = QuantumCircuit(1)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        with pytest.raises(ValueError, match="references weights"):
            compile_program(circuit).evolve(None, None, batch_size=1)

    def test_short_per_sample_weights_rejected_like_interpreted(self, rng):
        """A (1, n) weight matrix over batch 6 must raise on both tiers,
        not silently broadcast on the program tier."""
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        weights = rng.uniform(size=(1, 1))
        with pytest.raises(ValueError, match="batched matrix has batch"):
            _interpreted().evolve(circuit, None, weights, batch_size=6)
        with pytest.raises(ValueError, match="batched matrix has batch"):
            compile_program(circuit).evolve(None, weights, batch_size=6)

    def test_recompiles_after_circuit_mutation(self, rng):
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        first = compile_program(circuit)
        circuit.add("cnot", (0, 1))
        second = compile_program(circuit)
        assert first is not second
        exact = _interpreted().evolve(circuit, batch_size=1)
        assert np.allclose(qback.to_host(second.evolve(batch_size=1)), exact, atol=ATOL)

    def test_cache_hit_returns_same_program(self):
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        assert compile_program(circuit) is compile_program(circuit)


class TestFusion:
    def test_fusion_never_crosses_input_ops(self, rng):
        """Regression: input-dependent ops are fusion barriers."""
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        circuit.add("ry", (0,), ParameterRef.input(0))
        circuit.add("rz", (0,), ParameterRef.weight(1))
        circuit.add("h", (0,))
        program = compile_program(circuit)
        for step in program.steps:
            if len(step.ops) > 1:
                assert not any(op.is_input for op in step.ops)
        # The input op must sit alone between the weight/fixed runs.
        kinds = [step.kind for step in program.steps]
        assert "prot" in kinds  # the lone input ry
        flattened = [op for step in program.steps for op in step.ops]
        assert flattened == list(circuit.operations)  # order preserved

    def test_reuploading_circuit_fuses_between_blocks(self, rng):
        """Interleaved encode/variational blocks: fusion within, not across."""
        circuit = QuantumCircuit(2)
        encoder = DataReuploadingEncoding(AngleEncoding(2), n_repeats=2)
        index = 0
        for repeat in range(2):
            encoder.apply(circuit)
            circuit.add("rx", (0,), ParameterRef.weight(index))
            circuit.add("rz", (0,), ParameterRef.weight(index + 1))
            circuit.add("cnot", (0, 1))
            index += 2
        program = compile_program(circuit)
        assert any(step.kind == "fused" for step in program.steps)
        for step in program.steps:
            if len(step.ops) > 1:
                assert not any(op.is_input for op in step.ops)
        inputs = rng.uniform(size=(3, 2))
        weights = rng.uniform(size=(4,))
        exact = _interpreted().evolve(circuit, inputs, weights)
        out = program.evolve(inputs, weights, batch_size=3)
        assert np.allclose(out, exact, atol=ATOL)

    def test_cnot_ring_collapses_to_one_gather(self):
        circuit = QuantumCircuit(4)
        for wire in range(4):
            circuit.add("cnot", (wire, (wire + 1) % 4))
        program = compile_program(circuit)
        assert program.n_steps == 1
        assert program.steps[0].kind == "gather"

    def test_fused_weight_matrix_cached_across_calls(self, rng):
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))
        circuit.add("rz", (0,), ParameterRef.weight(1))
        program = compile_program(circuit)
        fused = [s for s in program.steps if s.kind == "fused"]
        assert len(fused) == 1
        weights = rng.uniform(size=2)
        program.evolve(None, weights, batch_size=1)
        cached = fused[0]._matrix
        program.evolve(None, weights.copy(), batch_size=3)
        assert fused[0]._matrix is cached  # content-equal weights hit cache
        weights[0] += 0.5
        exact = _interpreted().evolve(circuit, None, weights, batch_size=2)
        out = program.evolve(None, weights, batch_size=2)
        assert fused[0]._matrix is not cached  # in-place mutation noticed
        assert np.allclose(out, exact, atol=ATOL)

    def test_identity_gates_are_eliminated(self):
        circuit = QuantumCircuit(2)
        circuit.add("i", (0,))
        circuit.add("i", (1,))
        program = compile_program(circuit)
        assert program.n_steps == 0
        assert np.allclose(
            program.evolve(batch_size=2),
            np.tile([1, 0, 0, 0], (2, 1)).astype(complex),
        )


@pytest.mark.usefixtures("array_backend")
class TestCompiledCircuitIntegration:
    def test_prefix_program_matches_interpreted(self, rng):
        vqc = build_vqc(4, 8, 30, seed=5)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(6, 8))
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        with using_program(False):
            interpreted = compiled.run(inputs, weights)
        compiled_fresh = CompiledCircuit(vqc.circuit, vqc.observables)
        with using_program(True):
            program_out = compiled_fresh.run(inputs, weights)
        assert np.allclose(program_out, interpreted, atol=ATOL)

    def test_ensemble_weights_through_program_prefix(self, rng):
        vqc = build_vqc(3, 3, 12, seed=5)
        n_sets, k = 3, 4
        weights = np.stack([vqc.initial_weights(rng) for _ in range(n_sets)])
        inputs = rng.uniform(size=(k * n_sets, 3))
        compiled = CompiledCircuit(vqc.circuit, vqc.observables)
        outputs = compiled.run(inputs, weights)
        exact = _interpreted().run(
            vqc.circuit, vqc.observables, inputs, np.tile(weights, (k, 1))
        )
        assert np.allclose(outputs, exact, atol=ATOL)


@pytest.mark.usefixtures("array_backend")
class TestProgramAdjoint:
    def _grads(self, circuit, observables, inputs, weights, upstream):
        with using_program(True):
            gi_p, gw_p = adjoint_backward(
                circuit, observables, inputs, weights, upstream
            )
        with using_program(False):
            gi_i, gw_i = adjoint_backward(
                circuit, observables, inputs, weights, upstream
            )
        return (gi_p, gw_p), (gi_i, gw_i)

    def test_vqc_adjoint_matches_interpreted(self, rng):
        vqc = build_vqc(4, 8, 30, seed=3)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(5, 8))
        upstream = rng.normal(size=(5, 4))
        (gi_p, gw_p), (gi_i, gw_i) = self._grads(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        assert np.allclose(gi_p, gi_i, atol=ATOL)
        assert np.allclose(gw_p, gw_i, atol=ATOL)

    def test_all_gates_adjoint_matches_interpreted(self, rng):
        circuit = _all_gates_circuit()
        observables = all_z_observables(4)
        inputs = rng.uniform(size=(3, 3))
        weights = rng.uniform(-np.pi, np.pi, size=4)
        upstream = rng.normal(size=(3, 4))
        (gi_p, gw_p), (gi_i, gw_i) = self._grads(
            circuit, observables, inputs, weights, upstream
        )
        assert np.allclose(gi_p, gi_i, atol=ATOL)
        assert np.allclose(gw_p, gw_i, atol=ATOL)

    def test_per_sample_weight_adjoint_matches(self, rng):
        """2-D weights: per-sample weight gradients ride the stacked sweep."""
        vqc = build_vqc(3, 3, 15, seed=9)
        batch = 6
        weights = np.stack([vqc.initial_weights(rng) for _ in range(batch)])
        inputs = rng.uniform(size=(batch, 3))
        upstream = rng.normal(size=(batch, 3))
        (gi_p, gw_p), (gi_i, gw_i) = self._grads(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        assert gw_p.shape == (batch, 15)
        assert np.allclose(gi_p, gi_i, atol=ATOL)
        assert np.allclose(gw_p, gw_i, atol=ATOL)

    def test_hamiltonian_observable_adjoint(self, rng):
        vqc = build_vqc(3, 3, 9, seed=1)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(4, 3))
        ham = Hamiltonian(
            np.array([0.5, -1.5, 2.0]),
            [PauliString.z(0), PauliString({1: "Z", 2: "Z"}), PauliString({0: "X"})],
        )
        upstream = rng.normal(size=(4, 1))
        (gi_p, gw_p), (gi_i, gw_i) = self._grads(
            vqc.circuit, [ham], inputs, weights, upstream
        )
        assert np.allclose(gi_p, gi_i, atol=ATOL)
        assert np.allclose(gw_p, gw_i, atol=ATOL)


@pytest.mark.usefixtures("array_backend")
class TestMeasurementKernels:
    def test_diagonal_measure_matches_interpreted(self, rng):
        vqc = build_vqc(3, 3, 9, seed=4)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(4, 3))
        observables = [
            PauliString.z(0),
            PauliString({0: "Z", 2: "Z"}),
            PauliString({1: "X"}),
            PauliString(()),
            Hamiltonian(np.array([1.0, -2.0]), [PauliString.z(1), PauliString.z(2)]),
        ]
        with using_program(True):
            fast = StatevectorBackend().run(vqc.circuit, observables, inputs, weights)
        with using_program(False):
            reference = StatevectorBackend().run(
                vqc.circuit, observables, inputs, weights
            )
        assert np.allclose(fast, reference, atol=ATOL)

    def test_z_sign_cache_returns_shared_readonly_arrays(self):
        from repro.quantum import statevector as sv

        first = sv.pauli_z_string_signs(3, (0, 2))
        second = sv.pauli_z_string_signs(3, (0, 2))
        assert first is second
        assert not first.flags.writeable

    def test_probabilities_match_abs_square(self, rng):
        from repro.quantum import statevector as sv

        psi = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        assert np.allclose(sv.probabilities(psi), np.abs(psi) ** 2, atol=ATOL)


class TestVectorizedSampling:
    def test_sample_bitstrings_stream_matches_choice_loop(self, rng):
        """The batched inverse-CDF sampler consumes the generator exactly
        like the previous per-sample ``rng.choice`` loop."""
        from repro.quantum import statevector as sv

        psi = rng.normal(size=(5, 8)) + 1j * rng.normal(size=(5, 8))
        psi = sv.normalize(psi)
        probs = sv.probabilities(psi)
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum(axis=1, keepdims=True)
        reference_rng = np.random.default_rng(123)
        reference = np.stack(
            [reference_rng.choice(8, size=11, p=probs[b]) for b in range(5)]
        )
        sampled = sv.sample_bitstrings(psi, 11, np.random.default_rng(123))
        assert np.array_equal(sampled, reference)

    def test_mean_signs_stream_matches_choice_loop(self, rng):
        from repro.quantum.backends import _sample_mean_signs

        probs = rng.uniform(size=(4, 8))
        probs /= probs.sum(axis=1, keepdims=True)
        signs = np.where(np.arange(8) % 2 == 0, 1.0, -1.0)
        reference_rng = np.random.default_rng(77)
        reference = np.array(
            [
                signs[reference_rng.choice(8, size=16, p=probs[b])].mean()
                for b in range(4)
            ]
        )
        estimated = _sample_mean_signs(
            probs.copy(), signs, 16, np.random.default_rng(77)
        )
        assert np.allclose(estimated, reference, atol=ATOL)

    def test_shot_backend_equivalent_streams(self, rng):
        """Shot-sampled expectations are reproducible under a fixed seed."""
        vqc = build_vqc(2, 2, 6, seed=4)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(3, 2))
        first = StatevectorBackend(shots=64, rng=np.random.default_rng(5)).run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        second = StatevectorBackend(shots=64, rng=np.random.default_rng(5)).run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert np.array_equal(first, second)


class TestProgramIntrospection:
    def test_kernel_counts_and_repr(self):
        circuit = _all_gates_circuit()
        program = compile_program(circuit)
        counts = program.kernel_counts()
        assert sum(counts.values()) == program.n_steps
        assert "CircuitProgram" in repr(program)

    def test_subcircuit_program(self, rng):
        """Programs compile from op slices (CompiledCircuit's halves)."""
        vqc = build_vqc(3, 3, 9, seed=0)
        split = 3
        prefix = CircuitProgram(3, vqc.circuit.operations[:split])
        suffix = CircuitProgram(3, vqc.circuit.operations[split:])
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(2, 3))
        psi = prefix.apply(
            np.tile([1, 0, 0, 0, 0, 0, 0, 0], (2, 1)).astype(complex),
            inputs,
            weights,
        )
        psi = suffix.apply(psi, inputs, weights)
        exact = _interpreted().evolve(vqc.circuit, inputs, weights)
        assert np.allclose(psi, exact, atol=ATOL)
