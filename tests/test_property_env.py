"""Property-based tests (hypothesis) for the environment substrate.

Invariants from the paper's MDP definition:

- queue levels always stay inside [0, q_max] (the clip dynamics);
- the Eq. (1) reward is never positive;
- observations always lie in the declared observation space and the state
  is always their concatenation;
- in conserve_packets mode, packet mass entering clouds never exceeds the
  mass that left the edges.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SingleHopConfig
from repro.envs.queues import QueueBank
from repro.envs.single_hop import SingleHopOffloadEnv

MAX_EXAMPLES = 20


env_configs = st.builds(
    SingleHopConfig,
    n_clouds=st.integers(1, 3),
    n_agents=st.integers(1, 5),
    packet_amounts=st.sampled_from([(0.1, 0.2), (0.05,), (0.1, 0.2, 0.3)]),
    w_r=st.floats(0.5, 8.0),
    cloud_service_rate=st.floats(0.0, 0.6),
    episode_limit=st.integers(1, 12),
    initial_queue_level=st.floats(0.0, 1.0),
    conserve_packets=st.booleans(),
)


def run_episode(config, seed):
    rng = np.random.default_rng(seed)
    env = SingleHopOffloadEnv(config, rng=np.random.default_rng(seed + 1))
    observations, state = env.reset()
    records = []
    done = False
    while not done:
        actions = [env.action_space.sample(rng) for _ in range(env.n_agents)]
        result = env.step(actions)
        records.append(result)
        observations, done = result.observations, result.done
    return env, records


class TestEnvironmentInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(config=env_configs, seed=st.integers(0, 100_000))
    def test_queues_bounded(self, config, seed):
        env, records = run_episode(config, seed)
        cap = config.queue_capacity
        for result in records:
            assert np.all(result.info["edge_levels"] >= -1e-12)
            assert np.all(result.info["edge_levels"] <= cap + 1e-12)
            assert np.all(result.info["cloud_levels"] >= -1e-12)
            assert np.all(result.info["cloud_levels"] <= cap + 1e-12)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(config=env_configs, seed=st.integers(0, 100_000))
    def test_reward_nonpositive(self, config, seed):
        _, records = run_episode(config, seed)
        assert all(result.reward <= 1e-12 for result in records)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(config=env_configs, seed=st.integers(0, 100_000))
    def test_observations_in_space_and_state_consistent(self, config, seed):
        env, records = run_episode(config, seed)
        for result in records:
            for obs in result.observations:
                assert env.observation_space.contains(obs)
            assert np.allclose(result.state, np.concatenate(result.observations))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(config=env_configs, seed=st.integers(0, 100_000))
    def test_episode_length_respected(self, config, seed):
        _, records = run_episode(config, seed)
        assert len(records) == config.episode_limit
        assert records[-1].done
        assert not any(r.done for r in records[:-1])

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        config=env_configs.filter(lambda c: c.conserve_packets),
        seed=st.integers(0, 100_000),
    )
    def test_conservation_in_conserve_mode(self, config, seed):
        """Edges cannot ship more than they hold."""
        env, records = run_episode(config, seed)
        for result in records:
            assert np.all(
                result.info["sent"] <= max(config.packet_amounts) + 1e-12
            )


class TestQueueBankProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        n=st.integers(1, 6),
        flows=st.lists(
            st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=30,
        ),
    )
    def test_levels_invariant_under_any_flow_sequence(self, n, flows):
        bank = QueueBank(n, 1.0, initial_level=0.5)
        bank.reset()
        for outflow, inflow in flows:
            update = bank.step(outflow, inflow)
            assert np.all(bank.levels >= 0.0)
            assert np.all(bank.levels <= 1.0)
            # Level change is bounded by the flow volumes.
            delta = np.abs(update.levels - update.previous)
            assert np.all(delta <= outflow + inflow + 1e-12)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        raw=st.floats(-2.0, 3.0),
        previous=st.floats(0.0, 1.0),
    )
    def test_update_event_flags_partition(self, raw, previous):
        from repro.envs.queues import QueueUpdate

        update = QueueUpdate(np.array([previous]), np.array([raw]), 1.0)
        if update.empty[0]:
            assert raw <= 1e-10
        if update.overflow[0]:
            assert raw >= 1.0 - 1e-10
        # q_tilde and q_hat match Eq. (1)'s definitions.
        assert update.q_tilde[0] == abs(raw)
        assert update.q_hat[0] == abs(1.0 - abs(raw))
