"""Property-based tests (hypothesis) for the autodiff engine.

The central invariant: for any composition of supported operations, the
autodiff gradient equals the central-difference numerical gradient.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient

MAX_EXAMPLES = 20

small_floats = st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=small_floats)


def assert_grad_matches(build_loss, array, atol=1e-5):
    x = Tensor(array.copy(), requires_grad=True)
    build_loss(x).backward()
    numeric = numeric_gradient(lambda a: build_loss(Tensor(a)).item(), array)
    assert np.allclose(x.grad, numeric, atol=atol)


class TestElementwiseChains:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((3, 2)))
    def test_polynomial_chain(self, array):
        assert_grad_matches(
            lambda x: ((x * x - x * 0.5 + 1.0) * 2.0).sum(), array
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((4,)))
    def test_tanh_sigmoid_chain(self, array):
        assert_grad_matches(
            lambda x: F.sigmoid(F.tanh(x) * 2.0).sum(), array
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((2, 3)))
    def test_exp_normalised(self, array):
        assert_grad_matches(
            lambda x: (F.exp(x * 0.5) / 10.0).mean(), array
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((2, 4)))
    def test_softmax_weighted(self, array):
        weights = np.arange(8.0).reshape(2, 4)
        assert_grad_matches(
            lambda x: (F.softmax(x) * weights).sum(), array
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((2, 4)))
    def test_log_softmax_gather(self, array):
        indices = np.array([1, 3])
        assert_grad_matches(
            lambda x: F.gather(F.log_softmax(x), indices).sum(), array
        )


class TestBroadcastingGradients:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(a=arrays((3, 4)), b=arrays((4,)))
    def test_row_broadcast(self, a, b):
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        ((ta * tb) + tb).sum().backward()
        numeric_b = numeric_gradient(
            lambda arr: float(((a * arr) + arr).sum()), b
        )
        assert np.allclose(tb.grad, numeric_b, atol=1e-5)
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(a=arrays((3, 1)), b=arrays((1, 4)))
    def test_outer_broadcast(self, a, b):
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta + tb).sum().backward()
        assert np.allclose(ta.grad, np.full((3, 1), 4.0))
        assert np.allclose(tb.grad, np.full((1, 4), 3.0))


class TestMatmulChains:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(a=arrays((3, 2)), b=arrays((2, 3)))
    def test_matmul_square_loss(self, a, b):
        ta = Tensor(a.copy(), requires_grad=True)
        ((ta @ b) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda arr: float(((arr @ b) ** 2).sum()), a
        )
        assert np.allclose(ta.grad, numeric, atol=1e-4)


class TestInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((5,)))
    def test_softmax_is_distribution(self, array):
        probs = F.softmax(Tensor(array)).data
        assert np.all(probs >= 0)
        assert probs.sum() == np.float64(1.0) or abs(probs.sum() - 1.0) < 1e-9

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((3, 4)))
    def test_mse_nonnegative_and_zero_at_target(self, array):
        assert F.mse_loss(Tensor(array), array).item() <= 1e-15
        assert F.mse_loss(Tensor(array), array + 1.0).item() > 0.0

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(array=arrays((6,)))
    def test_grad_accumulation_linear(self, array):
        """backward() twice accumulates exactly twice the gradient."""
        x = Tensor(array.copy(), requires_grad=True)
        (x * 3.0).sum().backward()
        once = x.grad.copy()
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, 2.0 * once)
