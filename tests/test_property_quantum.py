"""Property-based tests (hypothesis) for the quantum substrate.

Invariants checked on randomly generated circuits and states:

- unitarity: every circuit preserves state norm;
- measurement: probabilities form a distribution, Z-expectations stay in
  [-1, 1];
- gradients: adjoint and parameter-shift agree on arbitrary circuits;
- density matrices: trace one, Hermitian, purity <= 1 under any channel;
- encodings: angle encoding is injective in expectation space for a single
  qubit (monotone regions), multi-layer encoding consumes the right count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import channels as ch
from repro.quantum import density as dm
from repro.quantum import statevector as sv
from repro.quantum.backends import StatevectorBackend
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.gradients import adjoint_backward, parameter_shift_backward
from repro.quantum.observables import all_z_observables

MAX_EXAMPLES = 25


@st.composite
def random_circuits(draw, max_qubits=3, max_ops=12):
    """A random circuit with a mix of fixed, input and weight gates."""
    n_qubits = draw(st.integers(1, max_qubits))
    n_ops = draw(st.integers(1, max_ops))
    n_inputs = draw(st.integers(0, 3))
    n_weights = draw(st.integers(0, 4))
    circuit = QuantumCircuit(n_qubits)
    single_pool = ["rx", "ry", "rz"]
    fixed_pool = ["h", "x", "y", "z", "s", "t"]
    double_pool = ["crx", "cry", "crz", "cnot", "cz", "swap"]
    used_inputs = set()
    used_weights = set()
    for _ in range(n_ops):
        use_double = n_qubits > 1 and draw(st.booleans())
        if use_double:
            gate = draw(st.sampled_from(double_pool))
            w1 = draw(st.integers(0, n_qubits - 1))
            w2 = draw(st.integers(0, n_qubits - 1).filter(lambda w: w != w1))
            wires = (w1, w2)
        else:
            gate = draw(st.sampled_from(single_pool + fixed_pool))
            wires = (draw(st.integers(0, n_qubits - 1)),)
        if gate in ("rx", "ry", "rz", "crx", "cry", "crz"):
            kind = draw(st.sampled_from(["input", "weight", "fixed"]))
            if kind == "input" and n_inputs > 0:
                index = draw(st.integers(0, n_inputs - 1))
                used_inputs.add(index)
                param = ParameterRef.input(index)
            elif kind == "weight" and n_weights > 0:
                index = draw(st.integers(0, n_weights - 1))
                used_weights.add(index)
                param = ParameterRef.weight(index)
            else:
                param = ParameterRef.fixed(draw(st.floats(-3.0, 3.0)))
            circuit.add(gate, wires, param)
        else:
            circuit.add(gate, wires)
    # Compact weight indices so the circuit validates.
    remap = {old: new for new, old in enumerate(sorted(used_weights))}
    compacted = QuantumCircuit(n_qubits)
    for op in circuit.operations:
        if op.is_trainable:
            compacted.add(
                op.gate, op.wires, ParameterRef.weight(remap[op.param.index])
            )
        else:
            compacted.add(op.gate, op.wires, op.param)
    return compacted


def _materialise(circuit, seed):
    rng = np.random.default_rng(seed)
    inputs = (
        rng.uniform(-1, 1, size=(2, circuit.n_inputs))
        if circuit.n_inputs
        else None
    )
    weights = (
        rng.uniform(0, 2 * np.pi, size=circuit.n_weights)
        if circuit.n_weights
        else None
    )
    return inputs, weights


class TestCircuitInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=random_circuits(), seed=st.integers(0, 10_000))
    def test_norm_preserved(self, circuit, seed):
        inputs, weights = _materialise(circuit, seed)
        psi = StatevectorBackend().evolve(circuit, inputs, weights, batch_size=2)
        assert np.allclose(sv.norms(psi), 1.0, atol=1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=random_circuits(), seed=st.integers(0, 10_000))
    def test_probabilities_distribution(self, circuit, seed):
        inputs, weights = _materialise(circuit, seed)
        probs = StatevectorBackend().probabilities(
            circuit, inputs, weights, batch_size=2
        )
        assert np.all(probs >= -1e-12)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=random_circuits(), seed=st.integers(0, 10_000))
    def test_z_expectations_bounded(self, circuit, seed):
        inputs, weights = _materialise(circuit, seed)
        out = StatevectorBackend().run(
            circuit, all_z_observables(circuit.n_qubits), inputs, weights,
            batch_size=2,
        )
        assert np.all(np.abs(out) <= 1.0 + 1e-9)


class TestGradientInvariants:
    @settings(max_examples=15, deadline=None)
    @given(circuit=random_circuits(max_qubits=2, max_ops=8),
           seed=st.integers(0, 10_000))
    def test_adjoint_equals_parameter_shift(self, circuit, seed):
        if circuit.n_weights == 0 and circuit.n_inputs == 0:
            return
        inputs, weights = _materialise(circuit, seed)
        observables = all_z_observables(circuit.n_qubits)
        rng = np.random.default_rng(seed + 1)
        upstream = rng.normal(size=(2 if inputs is not None else 1,
                                    len(observables)))
        gi_a, gw_a = adjoint_backward(
            circuit, observables, inputs, weights, upstream
        )
        gi_p, gw_p = parameter_shift_backward(
            circuit, observables, inputs, weights, upstream
        )
        if gw_a is not None:
            assert np.allclose(gw_a, gw_p, atol=1e-8)
        if gi_a is not None:
            assert np.allclose(gi_a, gi_p, atol=1e-8)


class TestDensityInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        circuit=random_circuits(max_qubits=2, max_ops=6),
        seed=st.integers(0, 10_000),
        error=st.floats(0.0, 0.3),
    )
    def test_noisy_evolution_physical(self, circuit, seed, error):
        from repro.quantum.backends import DensityMatrixBackend
        from repro.quantum.channels import NoiseModel

        inputs, weights = _materialise(circuit, seed)
        backend = DensityMatrixBackend(NoiseModel(error))
        rho = backend.evolve(circuit, inputs, weights, batch_size=1)
        assert np.allclose(dm.traces(rho), 1.0, atol=1e-9)
        assert np.allclose(rho, np.conjugate(np.swapaxes(rho, 1, 2)), atol=1e-9)
        purity = dm.purity(rho)
        assert np.all(purity <= 1.0 + 1e-9)
        assert np.all(purity >= 1.0 / rho.shape[1] - 1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        p=st.floats(0.0, 1.0),
        factory_index=st.integers(0, 3),
    )
    def test_channels_trace_preserving(self, p, factory_index):
        factory = [ch.depolarizing, ch.bit_flip, ch.phase_flip,
                   ch.amplitude_damping][factory_index]
        channel = factory(p)
        total = sum(k.conj().T @ k for k in channel.kraus_operators)
        assert np.allclose(total, np.eye(2), atol=1e-10)
