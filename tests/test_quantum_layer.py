"""Unit tests for the hybrid quantum-classical layer."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Module
from repro.nn.optim import Adam
from repro.nn.quantum_layer import QuantumLayer
from repro.nn.tensor import Tensor
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel
from repro.quantum.vqc import build_vqc

from tests.helpers import numeric_gradient


@pytest.fixture
def layer(rng):
    vqc = build_vqc(3, 3, 10, seed=2)
    return QuantumLayer(vqc, rng)


class TestForward:
    def test_output_shape_and_range(self, layer, rng):
        out = layer(Tensor(rng.uniform(size=(4, 3))))
        assert out.shape == (4, 3)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-12)

    def test_rejects_1d_input(self, layer):
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros(3)))

    def test_rejects_wrong_feature_count(self, layer):
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 5))))

    def test_parameter_count(self, layer):
        assert layer.n_parameters() == 10

    def test_repr(self, layer):
        assert "adjoint" in repr(layer)


class TestBackward:
    def test_weight_gradient_matches_numeric(self, layer, rng):
        x = rng.uniform(size=(3, 3))

        def loss_for_weights(weights):
            vqc = layer.vqc
            out = StatevectorBackend().run(vqc.circuit, vqc.observables, x, weights)
            return float((out**2).sum())

        out = layer(Tensor(x))
        (out * out).sum().backward()
        numeric = numeric_gradient(loss_for_weights, layer.weights.data.copy())
        assert np.allclose(layer.weights.grad, numeric, atol=1e-6)

    def test_input_gradient_matches_numeric(self, layer, rng):
        x_data = rng.uniform(size=(2, 3))
        x = Tensor(x_data, requires_grad=True)
        out = layer(x)
        (out * out).sum().backward()

        def loss_for_inputs(inputs):
            vqc = layer.vqc
            out = StatevectorBackend().run(
                vqc.circuit, vqc.observables, inputs, layer.weights.data
            )
            return float((out**2).sum())

        numeric = numeric_gradient(loss_for_inputs, x_data.copy())
        assert np.allclose(x.grad, numeric, atol=1e-6)

    def test_gradient_methods_agree(self, rng):
        vqc = build_vqc(2, 2, 6, seed=3)
        x = rng.uniform(size=(2, 2))
        grads = {}
        for method in ("adjoint", "parameter_shift"):
            layer = QuantumLayer(
                vqc, np.random.default_rng(0), gradient_method=method
            )
            out = layer(Tensor(x))
            (out * out).sum().backward()
            grads[method] = layer.weights.grad
        assert np.allclose(grads["adjoint"], grads["parameter_shift"], atol=1e-9)

    def test_trains_toward_target(self, rng):
        """A tiny supervised fit: the layer must reduce loss by training."""
        vqc = build_vqc(2, 2, 8, seed=4)
        layer = QuantumLayer(vqc, rng)
        x = rng.uniform(size=(6, 2))
        target = np.full((6, 2), 0.4)
        opt = Adam(layer.parameters(), lr=0.1)
        first_loss = None
        for _ in range(30):
            out = layer(Tensor(x))
            diff = out - target
            loss = (diff * diff).mean()
            if first_loss is None:
                first_loss = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.5


class TestBackendValidation:
    def test_adjoint_rejects_density_backend(self, rng):
        vqc = build_vqc(2, 2, 4, seed=1)
        with pytest.raises(ValueError):
            QuantumLayer(vqc, rng, backend=DensityMatrixBackend())

    def test_adjoint_rejects_shots(self, rng):
        vqc = build_vqc(2, 2, 4, seed=1)
        with pytest.raises(ValueError):
            QuantumLayer(vqc, rng, backend=StatevectorBackend(shots=16))

    def test_parameter_shift_with_noise_trains(self, rng):
        vqc = build_vqc(2, 2, 4, seed=1)
        layer = QuantumLayer(
            vqc,
            rng,
            backend=DensityMatrixBackend(NoiseModel(0.01)),
            gradient_method="parameter_shift",
        )
        out = layer(Tensor(rng.uniform(size=(2, 2))))
        out.sum().backward()
        assert layer.weights.grad is not None
        assert np.isfinite(layer.weights.grad).all()


class TestModuleIntegration:
    def test_discovered_inside_module(self, rng):
        vqc = build_vqc(2, 2, 5, seed=6)

        class Hybrid(Module):
            def __init__(self):
                self.q = QuantumLayer(vqc, rng)
                self.head = Linear(2, 1, rng)

            def forward(self, x):
                return self.head(self.q(x))

        model = Hybrid()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"q.weights", "head.weight", "head.bias"}
        assert model.n_parameters() == 5 + 2 + 1

    def test_state_dict_roundtrip(self, rng):
        vqc = build_vqc(2, 2, 5, seed=6)
        a = QuantumLayer(vqc, np.random.default_rng(1))
        b = QuantumLayer(vqc, np.random.default_rng(2))
        assert not np.allclose(a.weights.data, b.weights.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weights.data, b.weights.data)
