"""Unit tests for the queueing substrate."""

import numpy as np
import pytest

from repro.envs.queues import QueueBank, QueueUpdate, clip


class TestClip:
    def test_scalar(self):
        assert clip(1.5, 0.0, 1.0) == 1.0
        assert clip(-0.5, 0.0, 1.0) == 0.0
        assert clip(0.4, 0.0, 1.0) == pytest.approx(0.4)

    def test_vector(self):
        out = clip(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0)
        assert np.allclose(out, [0.0, 0.5, 1.0])


class TestQueueUpdate:
    def test_paper_quantities(self):
        """q_tilde = |raw| and q_hat = |q_max - q_tilde| per Eq. (1)."""
        update = QueueUpdate(
            previous=np.array([0.1, 0.9]),
            raw=np.array([-0.2, 1.3]),
            q_max=1.0,
        )
        assert np.allclose(update.levels, [0.0, 1.0])
        assert np.allclose(update.q_tilde, [0.2, 1.3])
        assert np.allclose(update.q_hat, [0.8, 0.3])
        assert list(update.empty) == [True, False]
        assert list(update.overflow) == [False, True]

    def test_overflow_amount(self):
        update = QueueUpdate(
            previous=np.array([0.9, 0.5]),
            raw=np.array([1.4, 0.5]),
            q_max=1.0,
        )
        assert update.overflow_amount == pytest.approx(0.4)

    def test_exact_boundary_counts_as_event(self):
        update = QueueUpdate(
            previous=np.array([0.5, 0.5]),
            raw=np.array([0.0, 1.0]),
            q_max=1.0,
        )
        assert update.empty[0]
        assert update.overflow[1]


class TestQueueBank:
    def test_reset_constant(self):
        bank = QueueBank(3, 1.0, initial_level=0.5)
        levels = bank.reset()
        assert np.allclose(levels, 0.5)

    def test_reset_uniform(self, rng):
        bank = QueueBank(100, 1.0, initial_level="uniform")
        levels = bank.reset(rng)
        assert np.all(levels >= 0) and np.all(levels <= 1)
        assert levels.std() > 0.1

    def test_uniform_needs_rng(self):
        bank = QueueBank(2, 1.0, initial_level="uniform")
        with pytest.raises(ValueError):
            bank.reset()

    def test_step_updates_levels(self):
        bank = QueueBank(2, 1.0, initial_level=0.5)
        bank.reset()
        update = bank.step(outflow=[0.2, 0.0], inflow=[0.0, 0.3])
        assert np.allclose(bank.levels, [0.3, 0.8])
        assert np.allclose(update.previous, 0.5)

    def test_step_clips(self):
        bank = QueueBank(2, 1.0, initial_level=0.5)
        bank.reset()
        bank.step(outflow=[1.0, 0.0], inflow=[0.0, 1.0])
        assert np.allclose(bank.levels, [0.0, 1.0])

    def test_scalar_broadcast(self):
        bank = QueueBank(3, 1.0, initial_level=0.6)
        bank.reset()
        bank.step(outflow=0.3, inflow=0.0)
        assert np.allclose(bank.levels, 0.3)

    def test_negative_flow_rejected(self):
        bank = QueueBank(1, 1.0)
        bank.reset()
        with pytest.raises(ValueError):
            bank.step(outflow=-0.1, inflow=0.0)
        with pytest.raises(ValueError):
            bank.step(outflow=0.0, inflow=-0.1)

    def test_levels_always_in_bounds(self, rng):
        bank = QueueBank(4, 1.0, initial_level=0.5)
        bank.reset()
        for _ in range(200):
            bank.step(
                outflow=rng.uniform(0, 0.5, 4), inflow=rng.uniform(0, 0.5, 4)
            )
            assert np.all(bank.levels >= 0.0)
            assert np.all(bank.levels <= 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_queues": 0, "capacity": 1.0},
            {"n_queues": 1, "capacity": 0.0},
            {"n_queues": 1, "capacity": 1.0, "initial_level": 2.0},
            {"n_queues": 1, "capacity": 1.0, "initial_level": "gaussian"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QueueBank(**kwargs)

    def test_repr(self):
        assert "n_queues=2" in repr(QueueBank(2, 1.0))
