"""Unit tests for seed management."""

import numpy as np
import pytest

from repro.seeding import SeedSequenceFactory, make_rng, spawn_rngs


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5).normal() == make_rng(5).normal()

    def test_entropy_when_unseeded(self):
        # Two unseeded generators should (overwhelmingly) differ.
        assert make_rng().normal() != make_rng().normal()


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.allclose(a.normal(size=8), b.normal(size=8))

    def test_reproducible(self):
        first = [g.normal() for g in spawn_rngs(7, 3)]
        second = [g.normal() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(42)
        assert factory.rng("env").normal() == factory.rng("env").normal()

    def test_different_names_different_streams(self):
        factory = SeedSequenceFactory(42)
        assert factory.rng("env").normal() != factory.rng("actor").normal()

    def test_different_roots_different_streams(self):
        assert (
            SeedSequenceFactory(1).rng("env").normal()
            != SeedSequenceFactory(2).rng("env").normal()
        )

    def test_order_independent(self):
        f1 = SeedSequenceFactory(3)
        a_first = f1.rng("a").normal()
        f2 = SeedSequenceFactory(3)
        f2.rng("zzz")  # constructing another stream must not shift 'a'
        assert f2.rng("a").normal() == a_first

    def test_repr(self):
        assert "root_seed=9" in repr(SeedSequenceFactory(9))
