"""Tests for the policy-serving tier: batcher, engine, reload, shards, HTTP.

The serving contract under test:

- the micro-batcher coalesces concurrent requests into single stacked
  evaluations, never splits a request group, and sheds load at the bound;
- the engine's answers are bit-for-bit the framework's own
  (``rows_probabilities`` / ``actors.act``) — batching changes latency,
  never results;
- hot reload swaps verified checkpoints between batches, drops zero
  requests under sustained load, and never serves a torn pair;
- the sharded engine is answer-identical to the in-process one over both
  transports, cleans up every shm segment, and survives worker crashes.
"""

import asyncio
import io
import json
import shutil

import numpy as np
import pytest

from repro import obs
from repro.config import ServingConfig, SingleHopConfig, TrainingConfig
from repro.marl.checkpoint import checkpoint_info, save_checkpoint
from repro.marl.frameworks import build_framework
from repro.serving import (
    AsyncServingClient,
    CheckpointWatcher,
    MicroBatcher,
    OverloadedError,
    PolicyEngine,
    PolicyServer,
    ServerError,
    ShardedPolicyEngine,
    select_actions,
)
from repro.serving.engine import FrameworkSpec

ENV = SingleHopConfig(episode_limit=5)
TRAIN = TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3)
SPEC = FrameworkSpec(name="proposed", env_config=ENV)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    """Two differently-trained checkpoints plus their live frameworks."""
    base = tmp_path_factory.mktemp("serving-ckpts")
    frameworks = {}
    paths = {}
    for label, seed in (("a", 7), ("b", 21)):
        framework = build_framework(
            "proposed", seed=seed, env_config=ENV, train_config=TRAIN
        )
        framework.train(n_epochs=1)
        frameworks[label] = framework
        paths[label] = save_checkpoint(framework, str(base / label))
    yield {"paths": paths, "frameworks": frameworks}
    for framework in frameworks.values():
        framework.close()


class TestSelectActions:
    def test_greedy_rows_take_argmax(self, rng):
        probs = rng.uniform(size=(6, 4))
        probs /= probs.sum(axis=1, keepdims=True)
        actions = select_actions(probs, [True] * 6, rng.random(6))
        assert np.array_equal(actions, np.argmax(probs, axis=1))

    def test_mixed_mask_layout_independent(self, rng):
        """Greedy rows ignore their draws: one draw per row regardless."""
        probs = rng.uniform(size=(5, 3))
        probs /= probs.sum(axis=1, keepdims=True)
        mask = [True, False, True, False, False]
        draws = rng.random(5)
        actions = select_actions(probs, mask, draws)
        tampered = draws.copy()
        tampered[0] = 1.0 - tampered[0]  # greedy row's draw is unused
        assert np.array_equal(actions, select_actions(probs, mask, tampered))
        # Sampled rows invert the same uniforms as the rollout sampler.
        from repro.marl.actors import categorical_from_draws

        sampled = ~np.asarray(mask)
        assert np.array_equal(
            actions[sampled],
            categorical_from_draws(probs[sampled], draws[sampled]),
        )


class FakeEngine:
    """Engine double recording batch sizes; action := agent index."""

    def __init__(self, fail=False):
        self.calls = []
        self.generation = 1
        self.fail = fail

    def act(self, observations, agents, greedy):
        if self.fail:
            raise RuntimeError("engine exploded")
        self.calls.append(len(observations))
        probs = np.full((len(observations), 4), 0.25)
        return np.asarray(agents), probs, self.generation


class TestMicroBatcher:
    def test_concurrent_requests_coalesce_into_one_flush(self):
        async def scenario():
            engine = FakeEngine()
            batcher = MicroBatcher(engine, max_batch=8, max_wait_us=200000)
            results = await asyncio.gather(*(
                batcher.submit(np.zeros((1, 4)), [i % 3], [True])
                for i in range(8)
            ))
            return engine, results

        engine, results = run(scenario())
        assert engine.calls == [8]  # one stacked call, not eight
        for i, (actions, probs, generation) in enumerate(results):
            assert actions.tolist() == [i % 3]
            assert probs.shape == (1, 4)
            assert generation == 1

    def test_timer_flushes_partial_batch(self):
        async def scenario():
            engine = FakeEngine()
            batcher = MicroBatcher(engine, max_batch=64, max_wait_us=2000)
            await asyncio.gather(*(
                batcher.submit(np.zeros((1, 4)), [0], [True])
                for _ in range(3)
            ))
            return engine, batcher

        engine, batcher = run(scenario())
        assert engine.calls == [3]
        assert batcher.stats["flush_time"] == 1
        assert batcher.stats["flush_size"] == 0
        assert batcher.pending_rows == 0

    def test_request_groups_are_never_split(self):
        async def scenario():
            engine = FakeEngine()
            batcher = MicroBatcher(engine, max_batch=4, max_wait_us=2000)
            results = await asyncio.gather(
                batcher.submit(np.zeros((3, 4)), [0, 1, 2], [True] * 3),
                batcher.submit(np.zeros((3, 4)), [2, 1, 0], [True] * 3),
            )
            return engine, results

        engine, results = run(scenario())
        # 3 + 3 rows with max_batch=4: two whole-group flushes, no split.
        assert engine.calls == [3, 3]
        assert results[0][0].tolist() == [0, 1, 2]
        assert results[1][0].tolist() == [2, 1, 0]

    def test_oversized_group_flushes_alone(self):
        async def scenario():
            engine = FakeEngine()
            batcher = MicroBatcher(engine, max_batch=2, max_wait_us=2000)
            return engine, await batcher.submit(
                np.zeros((5, 4)), list(range(5)), [True] * 5
            )

        engine, (actions, _, _) = run(scenario())
        assert engine.calls == [5]
        assert actions.tolist() == [0, 1, 2, 3, 4]

    def test_overload_sheds_at_the_bound(self):
        async def scenario():
            engine = FakeEngine()
            batcher = MicroBatcher(
                engine, max_batch=64, max_wait_us=1000, max_pending=2
            )
            results = await asyncio.gather(
                *(batcher.submit(np.zeros((1, 4)), [0], [False])
                  for _ in range(3)),
                return_exceptions=True,
            )
            return batcher, results

        batcher, results = run(scenario())
        overloaded = [r for r in results if isinstance(r, OverloadedError)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(overloaded) == 1 and len(served) == 2
        assert batcher.stats["rejected"] == 1

    def test_engine_failure_fails_the_waiters(self):
        async def scenario():
            batcher = MicroBatcher(FakeEngine(fail=True), max_batch=2,
                                   max_wait_us=1000)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await batcher.submit(np.zeros((2, 4)), [0, 1], [True, True])

        run(scenario())


class TestPolicyEngine:
    def test_probabilities_match_the_framework(self, checkpoints, rng):
        engine = PolicyEngine(SPEC, checkpoint_path=checkpoints["paths"]["a"])
        try:
            source = checkpoints["frameworks"]["a"]
            observations = rng.uniform(size=(6, ENV.observation_size))
            agents = rng.integers(0, ENV.n_agents, size=6)
            probs, generation = engine.infer(observations, agents)
            assert generation == 1
            for r in range(6):
                direct = source.actors.actors[agents[r]].probabilities(
                    observations[r][None]
                )[0]
                assert np.allclose(probs[r], direct, atol=1e-12)
        finally:
            engine.close()

    def test_greedy_act_matches_direct_actors_act(self, checkpoints, rng):
        """The serving answer is the framework's own answer."""
        engine = PolicyEngine(SPEC, checkpoint_path=checkpoints["paths"]["a"])
        try:
            source = checkpoints["frameworks"]["a"]
            observations = rng.uniform(
                size=(ENV.n_agents, ENV.observation_size)
            )
            actions, _, _ = engine.act(
                observations, np.arange(ENV.n_agents), [True] * ENV.n_agents
            )
            direct = source.actors.act(
                observations, np.random.default_rng(0), greedy=True
            )
            assert actions.tolist() == list(direct)
        finally:
            engine.close()

    def test_shadow_swap_bumps_generation_and_weights(self, checkpoints, rng):
        engine = PolicyEngine(SPEC, checkpoint_path=checkpoints["paths"]["a"])
        try:
            observations = rng.uniform(size=(3, ENV.observation_size))
            agents = [0, 1, 0]
            before, _ = engine.infer(observations, agents)
            shadow = engine.load_shadow(checkpoints["paths"]["b"])
            engine.swap(shadow, checkpoints["paths"]["b"])
            after, generation = engine.infer(observations, agents)
            assert generation == 2
            assert not np.allclose(before, after)
            expected = checkpoints["frameworks"]["b"].actors.rows_probabilities(
                observations, agents
            )
            assert np.allclose(after, expected, atol=1e-12)
        finally:
            engine.close()


class TestCheckpointWatcher:
    """Deterministic poll_once semantics (no thread, no server)."""

    def make_watcher(self, path, applied):
        info = checkpoint_info(path)
        return CheckpointWatcher(
            path,
            lambda p, header: applied.append(header["checksum"]),
            initial_checksum=info["checksum"],
        )

    def test_reload_rejects_torn_then_applies_fixed(self, checkpoints,
                                                    tmp_path):
        source = checkpoints["frameworks"]["a"]
        path = str(tmp_path / "live.npz")
        save_checkpoint(source, path)
        applied = []
        watcher = self.make_watcher(path, applied)

        assert watcher.poll_once() is False  # nothing changed

        # Same checksum, new mtime: recognised as unchanged, no reload.
        import os
        os.utime(path)
        assert watcher.poll_once() is False
        assert watcher.stats["unchanged"] == 1

        # A genuinely new checkpoint applies.
        save_checkpoint(checkpoints["frameworks"]["b"], path)
        assert watcher.poll_once() is True
        assert applied == [checkpoint_info(path)["checksum"]]

        # A torn pair is rejected — and, because its signature is NOT
        # recorded, the next poll retries instead of wedging.
        with open(path, "ab") as f:
            f.write(b"torn")
        assert watcher.poll_once() is False
        assert watcher.stats["rejected"] == 1
        save_checkpoint(source, path)  # repaired with different weights
        assert watcher.poll_once() is True
        assert len(applied) == 2
        assert watcher.stats["reloads"] == 2


def _copy_checkpoint(src_archive, dst_archive):
    shutil.copy(src_archive, dst_archive)
    shutil.copy(
        src_archive[: -len(".npz")] + ".json",
        dst_archive[: -len(".npz")] + ".json",
    )


class TestHotReloadUnderLoad:
    def test_zero_drops_and_no_torn_serve(self, checkpoints, tmp_path):
        """Sustained load across a hot reload: every request answers, the
        generation advances exactly once, and a torn overwrite is never
        served."""
        path = str(tmp_path / "live.npz")
        _copy_checkpoint(checkpoints["paths"]["a"], path)
        framework_b = checkpoints["frameworks"]["b"]
        probe = np.linspace(0.1, 0.9, ENV.observation_size)
        expected_after = int(np.argmax(
            framework_b.actors.actors[0].probabilities(probe[None])[0]
        ))

        async def scenario():
            config = ServingConfig(
                port=0, reload_poll_ms=25, max_batch=8, max_wait_us=500
            )
            server = PolicyServer(SPEC, config, checkpoint_path=path)
            await server.start()
            loop = asyncio.get_running_loop()
            done = asyncio.Event()
            responses = []

            async def pound():
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    while not done.is_set():
                        responses.append(
                            await client.act(probe, 0, greedy=True)
                        )

            workers = [asyncio.create_task(pound()) for _ in range(4)]
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as control:
                    base = (await control.health())["generation"]
                    await asyncio.sleep(0.1)  # load before the reload

                    save_checkpoint(framework_b, path)
                    deadline = loop.time() + 15.0
                    while (await control.health())["generation"] == base:
                        assert loop.time() < deadline, "reload never landed"
                        await asyncio.sleep(0.02)
                    swapped = (await control.health())["generation"]
                    assert swapped == base + 1

                    # Torn overwrite: rejected, generation stays, serving
                    # continues.
                    with open(path, "ab") as f:
                        f.write(b"torn")
                    await asyncio.sleep(0.2)  # several poll intervals
                    stats = await control.stats()
                    assert stats["generation"] == swapped
                    assert stats["reload"]["rejected"] >= 1
                    await asyncio.sleep(0.05)
            finally:
                done.set()
                await asyncio.gather(*workers)  # raises on any dropped request
                final_stats = await asyncio.wait_for(
                    AsyncServingClient("127.0.0.1", server.port).stats(), 5
                )
                await server.stop()
            return responses, final_stats

        responses, stats = run(scenario())
        assert stats["errors"] == 0  # zero drops, zero non-200s
        assert len(responses) > 20
        generations = {r["generation"] for r in responses}
        assert len(generations) == 2  # old and new, nothing else
        # Every post-swap response came from the new weights.
        post_swap = [r for r in responses
                     if r["generation"] == max(generations)]
        assert post_swap, "no request observed the new generation"
        assert all(r["action"] == expected_after for r in post_swap)


class TestShardedEngine:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_matches_in_process_engine(self, checkpoints, transport, rng):
        reference = PolicyEngine(
            SPEC, checkpoint_path=checkpoints["paths"]["a"], sample_seed=5
        )
        sharded = ShardedPolicyEngine(
            SPEC, checkpoint_path=checkpoints["paths"]["a"], n_workers=2,
            transport=transport, sample_seed=5,
        )
        segments = sharded.shm_segment_names()
        try:
            if transport == "shm":
                assert segments, "shm transport must expose its segments"
            observations = rng.uniform(size=(7, ENV.observation_size))
            agents = rng.integers(0, ENV.n_agents, size=7)
            probs_ref, _ = reference.infer(observations, agents)
            probs_shard, _ = sharded.infer(observations, agents)
            assert np.allclose(probs_shard, probs_ref, atol=1e-12)

            # Parent-side sampling: identical streams => identical actions
            # regardless of worker count.
            greedy = [False, True] * 3 + [False]
            actions_ref = reference.act(observations, agents, greedy)[0]
            actions_shard = sharded.act(observations, agents, greedy)[0]
            assert np.array_equal(actions_shard, actions_ref)

            # A broadcast reload keeps parity and flips the generation once.
            reference.load(checkpoints["paths"]["b"])
            sharded.load(checkpoints["paths"]["b"])
            assert sharded.generation == 2
            probs_ref, _ = reference.infer(observations, agents)
            probs_shard, _ = sharded.infer(observations, agents)
            assert np.allclose(probs_shard, probs_ref, atol=1e-12)
        finally:
            sharded.close()
            reference.close()
        # The /dev/shm leak-gate contract: every segment is gone.
        import os
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}"), name

    def test_worker_crash_restarts_and_answers(self, checkpoints, rng):
        sharded = ShardedPolicyEngine(
            SPEC, checkpoint_path=checkpoints["paths"]["a"], n_workers=2,
            transport="pipe",
        )
        reference = PolicyEngine(SPEC,
                                 checkpoint_path=checkpoints["paths"]["a"])
        try:
            observations = rng.uniform(size=(4, ENV.observation_size))
            agents = [0, 1, 0, 1]
            sharded._workers[0].process.kill()
            sharded._workers[0].process.join(timeout=5.0)
            probs, _ = sharded.infer(observations, agents)
            expected, _ = reference.infer(observations, agents)
            assert np.allclose(probs, expected, atol=1e-12)
            assert sharded.total_restarts >= 1
            # The restarted worker reloaded the broadcast checkpoint.
            assert sharded.ping() == ["pong", "pong"]
        finally:
            sharded.close()
            reference.close()


class TestServerHTTP:
    def test_end_to_end_routes(self, checkpoints, rng):
        source = checkpoints["frameworks"]["a"]
        observations = rng.uniform(size=(3, ENV.observation_size))
        expected = source.actors.rows_probabilities(observations, [0, 1, 0])

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0, max_batch=8,
                                   max_wait_us=500)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            await server.start()
            out = {}
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    out["health"] = await client.health()
                    out["act"] = await client.act(
                        observations[0], 0, greedy=True
                    )
                    out["batch"] = await client.act_batch(
                        observations, [0, 1, 0], greedy=True,
                        return_probs=True,
                    )
                    for status, call in (
                        (404, client.request("GET", "/nope")),
                        (400, client.request(
                            "POST", "/v1/act", {"agent": 0}
                        )),
                        (400, client.request(
                            "POST", "/v1/act-batch",
                            {"observations": [[0.0]], "agents": [0, 1],
                             "greedy": True},
                        )),
                    ):
                        with pytest.raises(ServerError) as excinfo:
                            await call
                        assert excinfo.value.status == status
                    out["stats"] = await client.stats()
            finally:
                await server.stop()
            return out

        out = run(scenario())
        assert out["health"]["status"] == "ok"
        assert out["health"]["generation"] == 1
        assert out["act"]["action"] == int(np.argmax(expected[0]))
        assert np.allclose(out["act"]["probs"], expected[0], atol=1e-9)
        assert out["batch"]["actions"] == [
            int(a) for a in np.argmax(expected, axis=1)
        ]
        assert np.allclose(out["batch"]["probs"], expected, atol=1e-9)
        assert out["stats"]["requests"] >= 3
        assert out["stats"]["errors"] >= 3  # the provoked 404/400s
        assert out["stats"]["batcher"]["rows"] >= 4


class TestMetricsEndpoint:
    def test_metrics_under_load(self, checkpoints, rng):
        """GET /metrics surfaces the telemetry registry: batch-occupancy
        histogram, queue-wait percentiles, flush-reason counters, reloads."""
        obs.reset()  # don't inherit another test's registry contents
        observations = rng.uniform(size=(4, ENV.observation_size))

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=50, max_batch=4,
                                   max_wait_us=500)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            await server.start()
            try:
                async def single(i):
                    # One connection per task: the client doesn't pipeline.
                    async with AsyncServingClient("127.0.0.1",
                                                  server.port) as c:
                        return await c.act(
                            observations[i % 4], i % 2, greedy=True
                        )

                # Concurrent singles (time or size flushes) plus a
                # full-width batch (guaranteed size flush).
                await asyncio.gather(*(single(i) for i in range(8)))
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    await client.act_batch(
                        observations, [0, 1, 0, 1], greedy=True
                    )
                    metrics = await client.metrics()
                assert obs.enabled()  # server holds telemetry on
                return metrics, server
            finally:
                await server.stop()

        metrics, server = run(scenario())
        assert metrics["telemetry_enabled"] is True
        assert metrics["requests"] >= 9
        occupancy = metrics["batch_occupancy"]
        assert occupancy["count"] >= 1
        assert occupancy["max"] >= 4  # the act-batch flush
        assert sum(occupancy["counts"]) == occupancy["count"]
        wait = metrics["queue_wait_us"]
        assert wait["count"] >= 9
        assert 0.0 <= wait["p50"] <= wait["p99"]
        reasons = metrics["flush_reasons"]
        assert set(reasons) == {"size", "time"}
        assert all(isinstance(v, int) for v in reasons.values())
        assert reasons["size"] + reasons["time"] == occupancy["count"]
        assert isinstance(metrics["reloads"], int)
        assert metrics["reloads"] == 0
        # stop() restored the disabled default.
        assert not obs.enabled()

    def test_metrics_route_exists_without_traffic(self, checkpoints):
        obs.reset()

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            await server.start()
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    return await client.metrics()
            finally:
                await server.stop()

        metrics = run(scenario())
        assert metrics["batch_occupancy"] == {"count": 0}
        assert metrics["queue_wait_us"] == {"count": 0}


class TestAccessLog:
    def test_structured_lines_per_request(self, checkpoints, rng):
        observations = rng.uniform(size=(3, ENV.observation_size))
        sink = io.StringIO()

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0, max_batch=8,
                                   max_wait_us=500, log_requests=True)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            server.access_log_stream = sink
            await server.start()
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    await client.act(observations[0], 0, greedy=True)
                    await client.act_batch(
                        observations, [0, 1, 0], greedy=True
                    )
            finally:
                await server.stop()

        run(scenario())
        lines = [json.loads(line)
                 for line in sink.getvalue().splitlines()]
        assert len(lines) == 2
        for line in lines:
            assert line["event"] == "request"
            assert line["flush"] in ("size", "time")
            assert line["queue_wait_us"] >= 0.0
            assert line["generation"] == 1
            assert isinstance(line["batch_id"], int)
        assert [line["request_id"] for line in lines] == [1, 2]
        assert lines[1]["rows"] == 3

    def test_log_disabled_by_default(self, checkpoints, rng):
        sink = io.StringIO()
        observation = rng.uniform(size=ENV.observation_size)

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0, max_wait_us=500)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            server.access_log_stream = sink
            await server.start()
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    await client.act(observation, 0, greedy=True)
            finally:
                await server.stop()

        run(scenario())
        assert sink.getvalue() == ""


class TestRequestTracing:
    """The server's causal-trace surface: response request ids, trace-tagged
    access logs, and the merged cross-process trace tree."""

    def test_responses_and_log_lines_carry_trace_ids(self, checkpoints, rng):
        observations = rng.uniform(size=(3, ENV.observation_size))
        sink = io.StringIO()

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0, max_batch=8,
                                   max_wait_us=500, log_requests=True)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            server.access_log_stream = sink
            await server.start()
            out = {"trace": obs.trace_id()}
            try:
                async with AsyncServingClient("127.0.0.1",
                                              server.port) as client:
                    out["act"] = await client.act(
                        observations[0], 0, greedy=True
                    )
                    out["batch"] = await client.act_batch(
                        observations, [0, 1, 0], greedy=True
                    )
            finally:
                await server.stop()
            return out

        out = run(scenario())
        # Responses carry a ``trace_id:span_id`` token (the X-Request-Id
        # analogue) that resolves straight into the exported timeline.
        tokens = {}
        for key in ("act", "batch"):
            trace, _, span = out[key]["request_id"].partition(":")
            assert trace == out["trace"]
            assert span
            tokens[key] = span
        assert tokens["act"] != tokens["batch"]
        # The access log names the same spans, alongside the stable
        # numeric per-server request ids.
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [line["request_id"] for line in lines] == [1, 2]
        assert {line["trace_id"] for line in lines} == {out["trace"]}
        assert {line["span_id"] for line in lines} == set(tokens.values())

    def test_concurrent_sharded_serving_forms_one_trace_tree(
            self, checkpoints, rng, tmp_path):
        from repro.obs import spans as obs_spans
        from repro.obs import trace as obs_trace

        path = tmp_path / "serve.jsonl"
        observations = rng.uniform(size=(6, ENV.observation_size))

        async def scenario():
            config = ServingConfig(port=0, reload_poll_ms=0, max_batch=4,
                                   max_wait_us=2000, workers=2)
            server = PolicyServer(SPEC, config,
                                  checkpoint_path=checkpoints["paths"]["a"])
            await server.start()
            try:
                async def single(i):
                    # One connection per task: the client doesn't pipeline.
                    async with AsyncServingClient("127.0.0.1",
                                                  server.port) as c:
                        return await c.act(
                            observations[i], i % 2, greedy=True
                        )

                await asyncio.gather(*(single(i) for i in range(6)))
            finally:
                await server.stop()

        obs.set_export_path(str(path))
        try:
            run(scenario())
            obs_spans.close_export()
            events = obs_trace.load_events([str(path)])
        finally:
            obs.set_export_path(None)

        spans = [e for e in events
                 if e.get("kind") == "span" and e.get("span_id")]
        names = {e["name"] for e in spans}
        assert {"serving.server", "serving.request", "serving.batch",
                "serving.queue_wait", "serving.shard_eval"} <= names
        assert sum(e["name"] == "serving.request" for e in spans) == 6
        assert sum(e["name"] == "serving.queue_wait" for e in spans) == 6
        # One trace, one root (the server's lifetime span), and a lane for
        # the parent plus each shard process.
        assert len({e["trace_id"] for e in spans}) == 1
        (root,) = [e for e in spans if e["name"] == "serving.server"]
        assert obs_trace.connected_roots(events) == [root["span_id"]]
        assert len({e["pid"] for e in spans}) == 3
        doc = obs_trace.to_chrome_trace(events)
        assert obs_trace.validate_chrome_trace(doc) == []
