"""Unit tests for the single-hop offloading environment (Tables I & II)."""

import numpy as np
import pytest

from repro.config import SingleHopConfig
from repro.envs.arrivals import DeterministicArrivals
from repro.envs.single_hop import SingleHopOffloadEnv


def make_env(rng=None, arrivals=None, **overrides):
    config = SingleHopConfig(**overrides)
    rng = rng if rng is not None else np.random.default_rng(0)
    return SingleHopOffloadEnv(config, rng=rng, arrivals=arrivals)


class TestSpaces:
    def test_table1_dimensions(self):
        env = make_env()
        assert env.n_agents == 4
        assert env.n_clouds == 2
        assert env.action_space.n == 4
        assert env.observation_space.size == 4
        assert env.state_size == 16

    def test_action_decode_encode_bijection(self):
        env = make_env()
        seen = set()
        for action in range(env.action_space.n):
            destination, amount = env.decode_action(action)
            seen.add((destination, amount))
            amount_index = env.config.packet_amounts.index(amount)
            assert env.encode_action(destination, amount_index) == action
        assert seen == {(0, 0.1), (0, 0.2), (1, 0.1), (1, 0.2)}

    def test_decode_invalid(self):
        env = make_env()
        with pytest.raises(ValueError):
            env.decode_action(4)

    def test_encode_invalid(self):
        env = make_env()
        with pytest.raises(ValueError):
            env.encode_action(2, 0)
        with pytest.raises(ValueError):
            env.encode_action(0, 5)


class TestReset:
    def test_observation_structure(self):
        env = make_env()
        observations, state = env.reset()
        assert len(observations) == 4
        for obs in observations:
            assert obs.shape == (4,)
            assert env.observation_space.contains(obs)
        # o_n = [own queue, own queue at t-1, cloud 1, cloud 2]
        assert np.allclose(observations[0], [0.5, 0.5, 0.5, 0.5])

    def test_state_is_concatenation(self):
        env = make_env()
        observations, state = env.reset()
        assert np.allclose(state, np.concatenate(observations))

    def test_reset_restores_initial_levels(self):
        env = make_env()
        env.reset()
        env.step([0, 1, 2, 3])
        env.reset()
        assert np.allclose(env.edge_queues.levels, 0.5)
        assert np.allclose(env.cloud_queues.levels, 0.5)


class TestDynamics:
    def test_deterministic_step(self):
        """Hand-computed transition with zero arrivals.

        All agents send 0.2 to cloud 0: cloud0 raw = 0.5 - 0.3 + 0.8 = 1.0
        (overflow boundary), cloud1 raw = 0.5 - 0.3 = 0.2 (empty cloud
        inflow), edges raw = 0.5 - 0.2 = 0.3.
        """
        env = make_env(arrivals=DeterministicArrivals(0.0))
        env.reset()
        action = env.encode_action(0, 1)  # cloud 0, amount 0.2
        result = env.step([action] * 4)
        assert np.allclose(result.info["cloud_levels"], [1.0, 0.2])
        assert np.allclose(result.info["edge_levels"], [0.3] * 4)
        # Cloud 0 exactly reaches q_max: overflow event with q_hat = 0.
        assert result.info["cloud_overflow"][0]
        assert result.reward == pytest.approx(0.0)

    def test_reward_overflow_and_empty_penalties(self):
        """Push cloud 0 past capacity, starve cloud 1; check Eq. (1) exactly.

        Step 2: cloud0 raw = 1.0 - 0.3 + 0.8 = 1.5 (q_tilde = 1.5,
        q_hat = 0.5, penalty 0.5 * w_r = 2.0); cloud1 raw =
        0.2 - 0.3 = -0.1 (empty, penalty q_tilde = 0.1).  Total -2.1.
        """
        env = make_env(arrivals=DeterministicArrivals(0.0))
        env.reset()
        action = env.encode_action(0, 1)
        env.step([action] * 4)
        result = env.step([action] * 4)
        assert result.info["cloud_overflow"][0]
        assert result.info["cloud_empty"][1]
        assert result.reward == pytest.approx(-(0.5 * 4.0 + 0.1))

    def test_reward_empty_penalty_deepens(self):
        """Step 3: cloud1 raw = 0 - 0.3 = -0.3 -> penalty 0.3; cloud0
        overflows again with q_hat = 0.5 -> 2.0.  Total -2.3."""
        env = make_env(arrivals=DeterministicArrivals(0.0))
        env.reset()
        action = env.encode_action(0, 1)
        env.step([action] * 4)
        env.step([action] * 4)
        result = env.step([action] * 4)
        assert result.info["cloud_empty"][1]
        assert result.reward == pytest.approx(-(2.0 + 0.3))

    def test_reward_never_positive(self, rng):
        env = make_env(rng=rng)
        env.reset()
        for _ in range(50):
            actions = [env.action_space.sample(rng) for _ in range(4)]
            result = env.step(actions)
            assert result.reward <= 0.0
            if result.done:
                env.reset()

    def test_observation_tracks_previous_level(self):
        env = make_env(arrivals=DeterministicArrivals(0.0))
        env.reset()
        action = env.encode_action(0, 1)
        result = env.step([action] * 4)
        # o_n = [q(t)=0.3, q(t-1)=0.5, clouds...]
        assert result.observations[0][0] == pytest.approx(0.3)
        assert result.observations[0][1] == pytest.approx(0.5)
        result = env.step([action] * 4)
        assert result.observations[0][0] == pytest.approx(0.1)
        assert result.observations[0][1] == pytest.approx(0.3)

    def test_paper_mode_ships_scheduled_amount(self):
        """Eq.-literal mode: the cloud receives p even from a drained edge."""
        env = make_env(arrivals=DeterministicArrivals(0.0))
        env.reset()
        action = env.encode_action(0, 1)
        for _ in range(3):
            result = env.step([action] * 4)
        # Edges hit zero but clouds keep receiving 0.8 per step.
        assert np.allclose(result.info["sent"], 0.2)

    def test_conserve_mode_limits_to_queue_content(self):
        env = make_env(arrivals=DeterministicArrivals(0.0), conserve_packets=True)
        env.reset()
        action = env.encode_action(0, 1)
        env.step([action] * 4)  # edges: 0.5 -> 0.3
        env.step([action] * 4)  # 0.3 -> 0.1
        result = env.step([action] * 4)  # only 0.1 left to send
        assert np.allclose(result.info["sent"], 0.1)

    def test_episode_termination(self):
        env = make_env(episode_limit=3)
        env.reset()
        for step in range(3):
            result = env.step([0, 0, 0, 0])
        assert result.done

    def test_action_validation(self):
        env = make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step([0, 0, 0])
        with pytest.raises(ValueError):
            env.step([0, 0, 0, 9])


class TestInfo:
    def test_metric_fields(self, rng):
        env = make_env(rng=rng)
        env.reset()
        result = env.step([0, 1, 2, 3])
        info = result.info
        for key in (
            "mean_queue",
            "empty_ratio",
            "overflow_ratio",
            "overflow_amount",
            "cloud_levels",
            "edge_levels",
            "destinations",
            "sent",
        ):
            assert key in info
        assert 0.0 <= info["mean_queue"] <= 1.0
        assert 0.0 <= info["empty_ratio"] <= 1.0
        assert 0.0 <= info["overflow_ratio"] <= 1.0

    def test_destinations_follow_actions(self):
        env = make_env()
        env.reset()
        actions = [
            env.encode_action(0, 0),
            env.encode_action(1, 0),
            env.encode_action(1, 1),
            env.encode_action(0, 1),
        ]
        result = env.step(actions)
        assert list(result.info["destinations"]) == [0, 1, 1, 0]
        assert np.allclose(result.info["sent"], [0.1, 0.1, 0.2, 0.2])

    def test_repr(self):
        assert "K=2, N=4" in repr(make_env())


class TestOverflowTermination:
    """``terminate_on_overflow``: a cloud overflow ends the episode early,
    making the horizon a cap rather than the fixed length."""

    def test_overflow_ends_episode_early(self):
        # The hand-computed TestDynamics transition: all agents sending 0.2
        # to cloud 0 drives it to the overflow boundary on step 1.
        env = make_env(
            arrivals=DeterministicArrivals(0.0),
            terminate_on_overflow=True,
            episode_limit=10,
        )
        assert env.has_data_dependent_termination
        env.reset()
        action = env.encode_action(0, 1)
        result = env.step([action] * 4)
        assert result.info["cloud_overflow"][0]
        assert result.done
        assert env._t < env.config.episode_limit

    def test_flag_off_keeps_fixed_horizon(self):
        env = make_env(arrivals=DeterministicArrivals(0.0), episode_limit=10)
        assert not env.has_data_dependent_termination
        env.reset()
        action = env.encode_action(0, 1)
        for step in range(1, 11):
            result = env.step([action] * 4)
            assert result.done == (step == 10)

    def test_no_overflow_runs_to_horizon(self):
        # Zero arrivals and no traffic: queues only drain, so the flag
        # never fires and the cap behaves exactly like the fixed horizon.
        env = make_env(
            arrivals=DeterministicArrivals(0.0),
            terminate_on_overflow=True,
            episode_limit=4,
        )
        env.reset()
        action = env.encode_action(0, 0)  # send the minimal amount
        steps = 0
        done = False
        while not done:
            result = env.step([action] * 4)
            done = result.done
            steps += 1
            assert steps <= 4
        assert steps == 4
