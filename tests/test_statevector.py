"""Unit tests for the batched statevector simulator."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum import statevector as sv

from tests.helpers import full_gate_matrix, random_state


class TestStates:
    def test_zero_state(self):
        psi = sv.zero_state(3, batch_size=2)
        assert psi.shape == (2, 8)
        assert np.allclose(psi[:, 0], 1.0)
        assert np.allclose(psi[:, 1:], 0.0)

    def test_basis_state(self):
        psi = sv.basis_state(2, 3)
        assert np.allclose(psi[0], [0, 0, 0, 1])

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            sv.basis_state(2, 4)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            sv.zero_state(0)

    def test_norms_and_normalize(self, rng):
        psi = rng.normal(size=(3, 4)) + 0j
        normalised = sv.normalize(psi)
        assert np.allclose(sv.norms(normalised), 1.0)

    def test_normalize_zero_state_raises(self):
        with pytest.raises(ValueError):
            sv.normalize(np.zeros((1, 4), dtype=complex))


class TestApplyMatrix:
    @pytest.mark.parametrize("wire", [0, 1, 2])
    def test_single_qubit_matches_kron_oracle(self, rng, wire):
        psi = random_state(rng, 3, batch=2)
        out = sv.apply_matrix(psi, gates.HADAMARD, (wire,), 3)
        oracle = full_gate_matrix(gates.HADAMARD, (wire,), 3)
        assert np.allclose(out, psi @ oracle.T)

    @pytest.mark.parametrize("wires", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)])
    def test_two_qubit_matches_kron_oracle(self, rng, wires):
        psi = random_state(rng, 3, batch=2)
        out = sv.apply_matrix(psi, gates.CNOT, wires, 3)
        oracle = full_gate_matrix(gates.CNOT, wires, 3)
        assert np.allclose(out, psi @ oracle.T)

    def test_three_qubit_toffoli(self, rng):
        psi = random_state(rng, 4, batch=2)
        out = sv.apply_matrix(psi, gates.TOFFOLI, (0, 2, 3), 4)
        oracle = full_gate_matrix(gates.TOFFOLI, (0, 2, 3), 4)
        assert np.allclose(out, psi @ oracle.T)

    def test_batched_matrix_per_sample(self, rng):
        psi = random_state(rng, 2, batch=3)
        thetas = np.array([0.1, 0.9, -0.4])
        out = sv.apply_matrix(psi, gates.rx(thetas), (1,), 2)
        for b, theta in enumerate(thetas):
            expected = sv.apply_matrix(psi[b : b + 1], gates.rx(theta), (1,), 2)
            assert np.allclose(out[b], expected[0])

    def test_norm_preserved_by_unitary(self, rng):
        psi = random_state(rng, 3, batch=4)
        out = sv.apply_matrix(psi, gates.cry(1.3), (2, 0), 3)
        assert np.allclose(sv.norms(out), 1.0)

    def test_duplicate_wires_rejected(self, rng):
        psi = random_state(rng, 2)
        with pytest.raises(ValueError):
            sv.apply_matrix(psi, gates.CNOT, (0, 0), 2)

    def test_wire_out_of_range(self, rng):
        psi = random_state(rng, 2)
        with pytest.raises(ValueError):
            sv.apply_matrix(psi, gates.HADAMARD, (2,), 2)

    def test_wrong_matrix_shape(self, rng):
        psi = random_state(rng, 2)
        with pytest.raises(ValueError):
            sv.apply_matrix(psi, gates.CNOT, (0,), 2)

    def test_batch_mismatch(self, rng):
        psi = random_state(rng, 2, batch=2)
        with pytest.raises(ValueError):
            sv.apply_matrix(psi, gates.rx(np.zeros(3)), (0,), 2)

    def test_input_not_modified(self, rng):
        psi = random_state(rng, 2)
        snapshot = psi.copy()
        sv.apply_matrix(psi, gates.PAULI_X, (0,), 2)
        assert np.allclose(psi, snapshot)


class TestApplyGate:
    def test_named_gate(self):
        psi = sv.zero_state(1)
        out = sv.apply_gate(psi, "x", (0,), 1)
        assert np.allclose(out[0], [0, 1])

    def test_named_rotation(self):
        psi = sv.zero_state(1)
        out = sv.apply_gate(psi, "ry", (0,), 1, np.pi)
        assert np.allclose(out[0], [0, 1], atol=1e-12)

    def test_arity_mismatch(self):
        psi = sv.zero_state(2)
        with pytest.raises(ValueError):
            sv.apply_gate(psi, "cnot", (0,), 2)


class TestMeasurement:
    def test_probabilities_sum_to_one(self, rng):
        psi = random_state(rng, 3, batch=5)
        probs = sv.probabilities(psi)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_marginal_of_product_state(self):
        # |0> (x) |1>: marginal over wire 1 is deterministic |1>.
        psi = sv.basis_state(2, 1)
        marginal = sv.marginal_probabilities(psi, (1,), 2)
        assert np.allclose(marginal[0], [0, 1])

    def test_marginal_wire_order(self, rng):
        psi = random_state(rng, 3)
        forward = sv.marginal_probabilities(psi, (0, 2), 3)
        swapped = sv.marginal_probabilities(psi, (2, 0), 3)
        # Outcome (a, b) under (0,2) equals outcome (b, a) under (2,0).
        forward = forward.reshape(2, 2)
        swapped = swapped.reshape(2, 2)
        assert np.allclose(forward, swapped.T)

    def test_marginal_all_wires_is_full(self, rng):
        psi = random_state(rng, 2)
        assert np.allclose(
            sv.marginal_probabilities(psi, (0, 1), 2), sv.probabilities(psi)
        )

    def test_expectation_z_basis_states(self):
        psi = sv.zero_state(2)
        assert np.allclose(sv.expectation_pauli_z(psi, 0, 2), 1.0)
        flipped = sv.apply_gate(psi, "x", (0,), 2)
        assert np.allclose(sv.expectation_pauli_z(flipped, 0, 2), -1.0)
        assert np.allclose(sv.expectation_pauli_z(flipped, 1, 2), 1.0)

    def test_expectation_z_superposition(self):
        psi = sv.apply_gate(sv.zero_state(1), "h", (0,), 1)
        assert np.allclose(sv.expectation_pauli_z(psi, 0, 1), 0.0, atol=1e-12)

    def test_sampling_distribution(self, rng):
        psi = sv.apply_gate(sv.zero_state(1), "ry", (0,), 1, np.pi / 3)
        expected_p1 = np.sin(np.pi / 6) ** 2
        samples = sv.sample_bitstrings(psi, 20000, rng)
        assert abs(samples.mean() - expected_p1) < 0.02

    def test_sampling_shape(self, rng):
        psi = sv.zero_state(2, batch_size=3)
        samples = sv.sample_bitstrings(psi, 7, rng)
        assert samples.shape == (3, 7)
        assert np.all(samples == 0)

    def test_sampling_requires_positive_shots(self, rng):
        with pytest.raises(ValueError):
            sv.sample_bitstrings(sv.zero_state(1), 0, rng)

    def test_inner_products(self, rng):
        psi = random_state(rng, 2, batch=3)
        assert np.allclose(sv.inner_products(psi, psi), 1.0)


class TestStatevectorClass:
    def test_chaining(self):
        state = sv.Statevector(2).apply("h", (0,)).apply("cnot", (0, 1))
        probs = state.probabilities()[0]
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_expectation_z(self):
        state = sv.Statevector(1).apply("x", (0,))
        assert np.allclose(state.expectation_z(0), -1.0)

    def test_copy_is_independent(self):
        state = sv.Statevector(1)
        dup = state.copy()
        dup.apply("x", (0,))
        assert np.allclose(state.data[0], [1, 0])

    def test_from_data_1d(self):
        state = sv.Statevector(1, data=np.array([0, 1], dtype=complex))
        assert state.batch_size == 1
        assert np.allclose(state.expectation_z(0), -1.0)

    def test_bad_data_dim(self):
        with pytest.raises(ValueError):
            sv.Statevector(2, data=np.zeros(3, dtype=complex))

    def test_repr(self):
        assert "n_qubits=2" in repr(sv.Statevector(2))
