"""Unit tests for ansatz templates."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.templates import (
    BasicEntanglerTemplate,
    RandomLayerTemplate,
    StronglyEntanglingTemplate,
)


class TestRandomLayerTemplate:
    def test_exact_gate_and_weight_budget(self):
        template = RandomLayerTemplate(4, 50, seed=1)
        circuit = QuantumCircuit(4)
        next_index = template.apply(circuit)
        assert next_index == 50
        assert circuit.n_operations == 50
        assert circuit.n_weights == 50
        assert template.n_weights == 50

    def test_reproducible_by_seed(self):
        a, b = QuantumCircuit(4), QuantumCircuit(4)
        RandomLayerTemplate(4, 30, seed=7).apply(a)
        RandomLayerTemplate(4, 30, seed=7).apply(b)
        assert [(op.gate, op.wires) for op in a.operations] == [
            (op.gate, op.wires) for op in b.operations
        ]

    def test_different_seeds_differ(self):
        a, b = QuantumCircuit(4), QuantumCircuit(4)
        RandomLayerTemplate(4, 30, seed=1).apply(a)
        RandomLayerTemplate(4, 30, seed=2).apply(b)
        assert [(op.gate, op.wires) for op in a.operations] != [
            (op.gate, op.wires) for op in b.operations
        ]

    def test_contains_entangling_gates(self):
        circuit = QuantumCircuit(4)
        RandomLayerTemplate(4, 50, seed=3, two_qubit_ratio=0.3).apply(circuit)
        counts = circuit.gate_counts()
        two_qubit = sum(counts.get(g, 0) for g in ("crx", "cry", "crz"))
        assert two_qubit > 0

    def test_zero_ratio_single_qubit_only(self):
        circuit = QuantumCircuit(4)
        RandomLayerTemplate(4, 20, seed=3, two_qubit_ratio=0.0).apply(circuit)
        assert all(len(op.wires) == 1 for op in circuit.operations)

    def test_single_qubit_register_drops_entanglers(self):
        circuit = QuantumCircuit(1)
        RandomLayerTemplate(1, 10, seed=3).apply(circuit)
        assert all(len(op.wires) == 1 for op in circuit.operations)

    def test_weight_offset(self):
        circuit = QuantumCircuit(2)
        next_index = RandomLayerTemplate(2, 5, seed=0).apply(circuit, weight_offset=10)
        assert next_index == 15
        indices = [op.param.index for op in circuit.operations]
        assert indices == list(range(10, 15))

    def test_wrong_register_width(self):
        with pytest.raises(ValueError):
            RandomLayerTemplate(4, 10).apply(QuantumCircuit(3))

    def test_initial_weights_range(self, rng):
        template = RandomLayerTemplate(4, 50, seed=1)
        weights = template.initial_weights(rng)
        assert weights.shape == (50,)
        assert np.all(weights >= 0) and np.all(weights < 2 * np.pi)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RandomLayerTemplate(4, 0)
        with pytest.raises(ValueError):
            RandomLayerTemplate(0, 5)
        with pytest.raises(ValueError):
            RandomLayerTemplate(4, 5, two_qubit_ratio=1.5)
        with pytest.raises(ValueError):
            RandomLayerTemplate(4, 5, gate_pool=("crx",))


class TestBasicEntanglerTemplate:
    def test_weight_count(self):
        template = BasicEntanglerTemplate(4, 3)
        assert template.n_weights == 12

    def test_structure(self):
        circuit = QuantumCircuit(3)
        BasicEntanglerTemplate(3, 1, rotation="ry").apply(circuit)
        gates_seq = [op.gate for op in circuit.operations]
        assert gates_seq == ["ry", "ry", "ry", "cnot", "cnot", "cnot"]

    def test_ring_wiring(self):
        circuit = QuantumCircuit(3)
        BasicEntanglerTemplate(3, 1).apply(circuit)
        cnots = [op.wires for op in circuit.operations if op.gate == "cnot"]
        assert cnots == [(0, 1), (1, 2), (2, 0)]

    def test_single_qubit_no_cnots(self):
        circuit = QuantumCircuit(1)
        BasicEntanglerTemplate(1, 2).apply(circuit)
        assert all(op.gate == "rx" for op in circuit.operations)

    def test_invalid_rotation(self):
        with pytest.raises(ValueError):
            BasicEntanglerTemplate(2, 1, rotation="h")

    def test_initial_weights(self, rng):
        weights = BasicEntanglerTemplate(4, 2).initial_weights(rng)
        assert weights.shape == (8,)


class TestStronglyEntanglingTemplate:
    def test_weight_count(self):
        assert StronglyEntanglingTemplate(4, 2).n_weights == 24

    def test_structure_one_layer(self):
        circuit = QuantumCircuit(2)
        StronglyEntanglingTemplate(2, 1).apply(circuit)
        gates_seq = [op.gate for op in circuit.operations]
        assert gates_seq == ["rz", "ry", "rz", "rz", "ry", "rz", "cnot", "cnot"]

    def test_layer_dependent_hop(self):
        circuit = QuantumCircuit(4)
        StronglyEntanglingTemplate(4, 2).apply(circuit)
        cnots = [op.wires for op in circuit.operations if op.gate == "cnot"]
        # Layer 0 hops by 1, layer 1 hops by 2.
        assert cnots[:4] == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert cnots[4:] == [(0, 2), (1, 3), (2, 0), (3, 1)]

    def test_weight_indices_contiguous(self):
        circuit = QuantumCircuit(3)
        next_index = StronglyEntanglingTemplate(3, 2).apply(circuit)
        assert next_index == 18
        circuit.validate()
