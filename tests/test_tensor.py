"""Unit tests for the autodiff Tensor."""

import numpy as np
import pytest

from repro.nn.tensor import Parameter, Tensor, as_tensor

from tests.helpers import numeric_gradient


def check_gradient(build_loss, array, atol=1e-7):
    """Compare autodiff gradient with central differences."""
    x = Tensor(array.copy(), requires_grad=True)
    loss = build_loss(x)
    loss.backward()
    numeric = numeric_gradient(lambda a: build_loss(Tensor(a)).item(), array)
    assert np.allclose(x.grad, numeric, atol=atol), (
        f"autodiff {x.grad} vs numeric {numeric}"
    )


class TestBasics:
    def test_construction(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.ndim == 2
        assert t.size == 2
        assert not t.requires_grad

    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_item_scalar_only(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_needs_scalar_or_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 1.0]))
        assert np.allclose(x.grad, [3.0, 3.0])

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, [6.0])

    def test_repr_and_len(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        assert "requires_grad=True" in repr(x)
        assert len(x) == 3


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda x: (x + 2.0).sum(), rng.normal(size=(3, 2)))

    def test_radd_and_rsub(self, rng):
        check_gradient(lambda x: (1.0 + x).sum(), rng.normal(size=(3,)))
        check_gradient(lambda x: (1.0 - x).sum(), rng.normal(size=(3,)))

    def test_mul(self, rng):
        check_gradient(lambda x: (x * x).sum(), rng.normal(size=(4,)))

    def test_neg_sub(self, rng):
        check_gradient(lambda x: (-x - x * 2).sum(), rng.normal(size=(3, 3)))

    def test_div(self, rng):
        array = rng.normal(size=(4,)) + 3.0
        check_gradient(lambda x: (x / 2.0 + 1.0 / x).sum(), array, atol=1e-6)

    def test_pow(self, rng):
        array = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda x: (x**3).sum(), array, atol=1e-5)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_two_tensor_gradients(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_broadcast_row_vector(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((4, 3)))
        assert np.allclose(b.grad, np.full(3, 4.0))

    def test_broadcast_keepdim_axis(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (4, 1)
        assert np.allclose(b.grad[:, 0], a.data.sum(axis=1))

    def test_diamond_graph(self):
        # y = x*x + x*x must double the gradient, not overwrite it.
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        assert np.allclose(x.grad, [12.0])


class TestMatmul:
    def test_gradients(self, rng):
        a_data = rng.normal(size=(4, 3))
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)

        a = Tensor(a_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        numeric_a = numeric_gradient(
            lambda arr: float((((arr @ b.data)) ** 2).sum()), a_data
        )
        assert np.allclose(a.grad, numeric_a, atol=1e-5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)) @ Tensor(np.zeros((3, 2)))


class TestShapeOps:
    def test_reshape(self, rng):
        check_gradient(
            lambda x: (x.reshape(6) * np.arange(6.0)).sum(),
            rng.normal(size=(2, 3)),
        )

    def test_reshape_tuple_arg(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.reshape(-1).shape == (6,)

    def test_transpose(self, rng):
        weights = rng.normal(size=(3, 2))
        check_gradient(
            lambda x: (x.transpose() * weights).sum(), rng.normal(size=(2, 3))
        )

    def test_transpose_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).transpose()

    def test_getitem(self, rng):
        check_gradient(lambda x: (x[1:] * 2).sum(), rng.normal(size=(4, 2)))

    def test_getitem_repeated_row(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        y = x[np.array([1, 1, 2])]
        y.sum().backward()
        assert np.allclose(x.grad, [0, 2, 1, 0])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda x: x.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        weights = rng.normal(size=4)
        check_gradient(
            lambda x: (x.sum(axis=0) * weights).sum(), rng.normal(size=(3, 4))
        )

    def test_sum_keepdims(self, rng):
        check_gradient(
            lambda x: (x.sum(axis=1, keepdims=True) * 2.0).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_mean(self, rng):
        check_gradient(lambda x: x.mean(), rng.normal(size=(5,)))

    def test_mean_axis(self, rng):
        weights = rng.normal(size=3)
        check_gradient(
            lambda x: (x.mean(axis=1) * weights).sum(), rng.normal(size=(3, 4))
        )

    def test_mean_tuple_axis(self, rng):
        check_gradient(
            lambda x: x.mean(axis=(0, 1)).sum(), rng.normal(size=(2, 3, 2))
        )
