"""Tests for causal distributed tracing (``repro.obs.trace``).

The contracts under test:

- completed spans carry ``trace_id`` / ``span_id`` / ``parent_id`` links
  resolved explicit > enclosing > process default, and the JSONL export
  stamps aligned start times and thread ids;
- the export sink creates parent directories, is line-buffered (events
  are readable without closing), and survives concurrent writers racing
  ``set_export_path`` / ``close_export``;
- clock negotiation (RTT midpoint) puts worker timestamps on the
  parent's timeline;
- a sharded ``train_epoch`` (gradient and ES) produces one *connected*
  parent→child tree spanning parent and worker processes, over both
  transports — and tracing never perturbs bit-exact determinism;
- the Chrome-trace converter emits schema-valid documents with process
  lanes and paired flow arrows, and the CLIs fail loudly on missing or
  empty traces.
"""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import flight as obs_flight
from repro.obs import report as obs_report
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace

from tests.helpers import (
    ROLLOUT_ENGINES,
    assert_cross_engine_equivalence,
    make_engine_trainer,
    make_es_trainer,
)


@pytest.fixture(autouse=True)
def clean_trace_state():
    """Pristine registry, export sink, trace, and flight state per test."""
    previous = obs.set_enabled(False)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    obs_flight.reset()
    yield
    obs.set_enabled(previous)
    obs.reset()
    obs.set_export_path(None)
    obs_trace.reset()
    obs_flight.reset()


def traced_run(tmp_path, name="trace.jsonl"):
    """Enable telemetry with a JSONL sink; returns the sink path."""
    path = tmp_path / name
    obs.set_enabled(True)
    obs.set_export_path(str(path))
    return path


def span_events(events):
    return [e for e in events if e.get("kind") == "span"]


# -- trace context ------------------------------------------------------------


class TestTraceContext:
    def test_nested_spans_link_parent_to_child(self, tmp_path):
        path = traced_run(tmp_path)
        obs.begin_trace(label="test")
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("second"):
                pass
        obs_spans.close_export()

        events = span_events(obs_trace.load_events([str(path)]))
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"outer", "inner", "second"}
        outer = by_name["outer"]
        assert "parent_id" not in outer  # root
        assert by_name["inner"]["parent_id"] == outer["span_id"]
        assert by_name["second"]["parent_id"] == outer["span_id"]
        trace_ids = {e["trace_id"] for e in events}
        assert trace_ids == {obs.trace_id()}
        span_ids = [e["span_id"] for e in events]
        assert len(set(span_ids)) == 3
        for event in events:
            assert isinstance(event["t_us"], float)
            assert event["pid"] == os.getpid()
            assert event["tid"] == threading.get_native_id()

    def test_parent_resolution_explicit_beats_context_beats_default(self):
        obs_trace.begin_trace()
        obs_trace.set_default_parent("root-0")
        assert obs_trace.effective_parent() == "root-0"
        token = obs_trace._push_current("ctx-1")
        try:
            assert obs_trace.effective_parent() == "ctx-1"
            assert obs_trace.effective_parent("explicit-2") == "explicit-2"
        finally:
            obs_trace._pop_current(token)
        assert obs_trace.effective_parent() == "root-0"

    def test_spans_without_trace_carry_no_ids(self, tmp_path):
        path = traced_run(tmp_path)
        with obs.span("untraced"):
            pass
        obs_spans.close_export()
        (event,) = span_events(obs_trace.load_events([str(path)]))
        assert "trace_id" not in event
        assert "span_id" not in event
        # But t_us/pid/tid timeline fields are still stamped.
        assert {"t_us", "dur_us", "pid", "tid"} <= set(event)

    def test_begin_trace_idempotent_end_clears(self):
        first = obs.begin_trace()
        assert obs.begin_trace() == first
        assert obs_trace.active()
        obs.end_trace()
        assert not obs_trace.active()
        assert obs.trace_id() is None
        assert obs_trace.default_parent() is None

    def test_manual_span_never_self_parents(self, tmp_path):
        path = traced_run(tmp_path)
        obs_trace.begin_trace()
        root = obs_trace.new_span_id()
        obs_trace.set_default_parent(root)
        # The root span is emitted while it is itself the default parent —
        # the guard must keep it a root rather than a self-loop.
        obs_trace.emit_manual_span("root", t_us=0.0, dur_us=5.0, span_id=root)
        child = obs_trace.emit_manual_span("child", t_us=1.0, dur_us=1.0)
        obs_spans.close_export()

        events = {e["name"]: e for e in
                  span_events(obs_trace.load_events([str(path)]))}
        assert "parent_id" not in events["root"]
        assert events["child"]["parent_id"] == root
        assert child == events["child"]["span_id"]
        assert obs_trace.connected_roots(list(events.values())) == [root]

    def test_propagation_context_adopt_round_trip(self, tmp_path):
        base = traced_run(tmp_path)
        trace = obs.begin_trace(label="parent")
        with obs.span("parent.op"):
            ctx = obs_trace.propagation_context()
            assert ctx["trace_id"] == trace
            assert ctx["parent_span_id"] == obs_trace.current_span_id()
            assert ctx["export"] == str(base)
        obs_spans.close_export()

        # Simulate the far side of the Transport seam: fresh trace state
        # in this process, then adopt.
        obs_trace.reset()
        obs.set_export_path(None)
        obs_trace.adopt(ctx, label="worker-0")
        assert obs.trace_id() == trace
        assert obs_trace.default_parent() == ctx["parent_span_id"]
        assert obs_trace.process_label() == "worker-0"
        assert obs_spans.export_path() == f"{base}.{os.getpid()}"
        with obs.span("worker.op"):
            pass
        obs_spans.close_export()

        # load_events picks up the <base>.<pid> sibling automatically and
        # the adopted span parents to the sender's span: one connected tree.
        events = obs_trace.load_events([str(base)])
        by_name = {e["name"]: e for e in span_events(events)}
        assert by_name["worker.op"]["parent_id"] == \
            by_name["parent.op"]["span_id"]
        assert obs_trace.connected_roots(events) == \
            [by_name["parent.op"]["span_id"]]
        labels = {e["label"] for e in events if e.get("kind") == "process"}
        assert {"parent", "worker-0"} <= labels

    def test_adopt_none_is_a_no_op(self):
        obs_trace.adopt(None)
        assert not obs_trace.active()
        assert obs_spans.export_path() is None


# -- clock alignment ----------------------------------------------------------


class TestClockAlignment:
    def test_compute_clock_offset_recovers_skew(self):
        # Remote clock runs 1_000_000 us behind the parent's; a zero-RTT
        # probe recovers the skew exactly.
        assert obs_trace.compute_clock_offset(5_000_000, 5_000_000,
                                              4_000_000) == 1_000_000
        # Midpoint rule: offset is measured at the middle of the round trip.
        assert obs_trace.compute_clock_offset(1000, 2000, 500) == 1000

    def test_align_applies_installed_offset(self):
        obs_trace.set_clock_offset_us(123_456)
        assert obs_trace.clock_offset_us() == 123_456
        assert obs_trace.align_us(1000) == 124_456
        raw = obs_trace.raw_now_us()
        assert obs_trace.now_us() >= raw + 123_456

    def test_round_trip_negotiation_between_two_clocks(self):
        # Simulate parent and worker clocks skewed by a known amount and
        # run the handshake arithmetic both sides perform.
        skew = -777_000  # worker's raw clock ahead of the parent's
        t0 = obs_trace.raw_now_us()
        worker_raw = obs_trace.raw_now_us() - skew
        t1 = obs_trace.raw_now_us()
        offset = obs_trace.compute_clock_offset(t0, t1, worker_raw)
        # Aligned worker time lands inside the probe window.
        aligned = worker_raw + offset
        assert t0 <= aligned <= t1


# -- export sink --------------------------------------------------------------


class TestExportSink:
    def test_set_export_path_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "runs" / "deep" / "trace.jsonl"
        obs.set_export_path(str(path))
        assert path.parent.is_dir()
        obs_spans.export_event({"kind": "span", "name": "x"})
        obs_spans.close_export()
        assert path.exists()

    def test_line_buffered_events_visible_without_close(self, tmp_path):
        path = traced_run(tmp_path)
        with obs.span("live"):
            pass
        # No close_export: the line-buffered sink must already have
        # flushed the completed span.
        lines = path.read_text().splitlines()
        assert any(json.loads(line)["name"] == "live" for line in lines)

    def test_concurrent_export_and_reconfiguration_races(self, tmp_path):
        """Writers racing set_export_path/close_export never tear a line."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        obs.set_export_path(str(paths[0]))
        errors = []
        stop = threading.Event()

        def writer(worker):
            try:
                for i in range(300):
                    obs_spans.export_event(
                        {"kind": "span", "name": f"w{worker}", "i": i}
                    )
            except Exception as exc:  # noqa: BLE001 — fail the test below
                errors.append(exc)

        def churner():
            try:
                flip = 0
                while not stop.is_set():
                    obs.set_export_path(str(paths[flip % 2]))
                    if flip % 3 == 0:
                        obs_spans.close_export()
                    flip += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        churn = threading.Thread(target=churner)
        churn.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        churn.join()
        obs_spans.close_export()

        assert errors == []
        written = 0
        for path in paths:
            if not path.exists():
                continue
            for line in path.read_text().splitlines():
                event = json.loads(line)  # any torn line raises here
                assert event["kind"] == "span"
                written += 1
        assert written > 0


# -- cross-process tree reassembly --------------------------------------------


def load_tree(path):
    events = obs_trace.load_events([str(path)])
    spans = span_events(events)
    traced = [e for e in spans if e.get("span_id")]
    return events, traced


class TestCrossProcessTree:
    @pytest.mark.parametrize("engine", ["sharded-pipe", "sharded-shm"])
    def test_sharded_epoch_is_one_connected_tree(self, engine, tmp_path):
        """Parent + 2 workers merge into a single-root tree with aligned
        clocks, over either transport, deterministically."""
        path = traced_run(tmp_path)
        trainer = make_engine_trainer("single_hop", engine, n_envs=2,
                                      n_workers=2)
        try:
            trainer.train_epoch()
        finally:
            trainer.close()
        obs_spans.close_export()

        events, traced = load_tree(path)
        names = [e["name"] for e in traced]
        assert names.count("worker.collect") == 2
        for expected in ("trainer.epoch", "trainer.rollout",
                         "trainer.update"):
            assert expected in names
        # Exactly one trace, one root (the epoch span), three processes.
        assert len({e["trace_id"] for e in traced}) == 1
        by_name = {e["name"]: e for e in traced}
        assert obs_trace.connected_roots(events) == \
            [by_name["trainer.epoch"]["span_id"]]
        assert len({e["pid"] for e in traced}) == 3

        # Clock alignment: each worker's collect span must land inside
        # the parent's epoch span on the merged timeline (the negotiation
        # error is tens of µs; allow 5 ms of slack).
        epoch = by_name["trainer.epoch"]
        slack = 5000.0
        for event in traced:
            if event["name"] != "worker.collect":
                continue
            assert event["t_us"] >= epoch["t_us"] - slack
            assert (event["t_us"] + event["dur_us"]
                    <= epoch["t_us"] + epoch["dur_us"] + slack)
            assert event["parent_id"] == by_name["trainer.rollout"]["span_id"]

        # And the whole thing converts to schema-clean Chrome JSON with a
        # lane per process.
        doc = obs_trace.to_chrome_trace(events)
        assert obs_trace.validate_chrome_trace(doc) == []
        lanes = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(lanes) == 3
        flows = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        assert len(flows) >= 2  # one arrow per worker lane at minimum

    def test_es_sharded_generation_joins_the_tree(self, tmp_path):
        path = traced_run(tmp_path)
        trainer = make_es_trainer("single_hop", "sharded-pipe", n_workers=2)
        try:
            trainer.train_epoch()
        finally:
            trainer.close()
        obs_spans.close_export()

        events, traced = load_tree(path)
        by_name = {e["name"]: e for e in traced}
        assert obs_trace.connected_roots(events) == \
            [by_name["trainer.epoch"]["span_id"]]
        assert len({e["pid"] for e in traced}) >= 2

    def test_tracing_preserves_bit_exact_determinism(self, tmp_path):
        """The paper's numbers with the flight recorder on and a full
        trace exporting: episodes, metrics, and RNG positions identical
        across every engine."""
        traced_run(tmp_path)
        assert obs_flight.enabled()
        assert_cross_engine_equivalence(
            "single_hop", ROLLOUT_ENGINES, n_envs=1, n_workers=1
        )
        assert_cross_engine_equivalence(
            "single_hop", ("vector", "sharded-pipe", "sharded-shm"),
            n_envs=2, n_workers=2,
        )


# -- Chrome conversion --------------------------------------------------------


def synthetic_events():
    return [
        {"kind": "process", "pid": 1, "label": "parent"},
        {"kind": "process", "pid": 2, "label": "worker-0"},
        {"kind": "span", "name": "root", "t_us": 0.0, "dur_us": 100.0,
         "pid": 1, "tid": 1, "trace_id": "t", "span_id": "a"},
        {"kind": "span", "name": "local-child", "t_us": 10.0, "dur_us": 20.0,
         "pid": 1, "tid": 1, "trace_id": "t", "span_id": "b",
         "parent_id": "a"},
        {"kind": "span", "name": "remote-child", "t_us": 40.0, "dur_us": 30.0,
         "pid": 2, "tid": 9, "trace_id": "t", "span_id": "c",
         "parent_id": "a"},
    ]


class TestChromeConversion:
    def test_lanes_flows_and_metadata(self):
        doc = obs_trace.to_chrome_trace(synthetic_events())
        assert obs_trace.validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        meta = {e["pid"]: e["args"]["name"]
                for e in events if e["ph"] == "M"}
        assert meta == {1: "parent", 2: "worker-0"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        # Only the cross-process link grows a flow arrow; the same-lane
        # parent/child relies on slice nesting.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["pid"] == 1 and finishes[0]["pid"] == 2
        # The arrow tail is clamped inside the parent slice.
        assert 0.0 <= starts[0]["ts"] <= 100.0
        assert finishes[0]["ts"] == 40.0

    def test_validator_flags_broken_documents(self):
        bad = {"traceEvents": [
            {"ph": "X", "name": "n", "ts": 0, "dur": -1, "pid": 1, "tid": 1},
            {"ph": "s", "id": 7, "ts": 0, "pid": 1, "tid": 1},
            {"ph": "Q", "name": "junk"},
            {"ph": "X", "name": "m", "ts": "soon", "dur": 1, "pid": 1,
             "tid": 1},
        ]}
        problems = obs_trace.validate_chrome_trace(bad)
        assert any("negative dur" in p for p in problems)
        assert any("unpaired" in p for p in problems)
        assert any("unknown ph" in p for p in problems)
        assert any("ts not numeric" in p for p in problems)
        assert obs_trace.validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_connected_roots_detects_orphans(self):
        events = synthetic_events()
        assert obs_trace.connected_roots(events) == ["a"]
        events.append({"kind": "span", "name": "orphan", "t_us": 0.0,
                       "dur_us": 1.0, "pid": 3, "tid": 3, "trace_id": "t",
                       "span_id": "z", "parent_id": "missing"})
        assert obs_trace.connected_roots(events) == ["a", "z"]


# -- CLIs ---------------------------------------------------------------------


class TestTraceCLI:
    def test_convert_merge_and_check(self, tmp_path, capsys):
        base = tmp_path / "run.jsonl"
        with open(base, "w") as f:
            for event in synthetic_events()[:4]:
                f.write(json.dumps(event) + "\n")
        # A worker sibling file is merged without being named.
        with open(f"{base}.4242", "w") as f:
            f.write(json.dumps(synthetic_events()[4]) + "\n")
        out = tmp_path / "chrome" / "trace.json"

        assert obs_trace.main([str(base), "-o", str(out), "--check"]) == 0
        captured = capsys.readouterr()
        assert "3 spans" in captured.out
        doc = json.loads(out.read_text())
        assert obs_trace.validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "remote-child" in names  # proof the sibling merged

    def test_stdout_mode_emits_json(self, tmp_path, capsys):
        base = tmp_path / "run.jsonl"
        base.write_text(json.dumps(synthetic_events()[2]) + "\n")
        assert obs_trace.main([str(base)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]

    def test_missing_or_empty_input_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert obs_trace.main([str(missing)]) == 2
        assert "no trace events" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obs_trace.main([str(empty)]) == 2


class TestReportCLI:
    def make_trace(self, tmp_path, n_names=6):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as f:
            for i in range(n_names):
                f.write(json.dumps({
                    "kind": "span", "name": f"phase.{i}",
                    "dur_us": float(100 * (i + 1)),
                }) + "\n")
        return path

    def test_top_truncates_span_table(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert obs_report.main([str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase.5" in out and "phase.4" in out  # largest two
        assert "phase.0" not in out
        assert "(4 more spans; widen with --top)" in out

    def test_top_larger_than_table_shows_everything(self, tmp_path, capsys):
        path = self.make_trace(tmp_path, n_names=2)
        assert obs_report.main([str(path), "--top", "10"]) == 0
        out = capsys.readouterr().out
        assert "more spans" not in out

    def test_top_must_be_positive(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert obs_report.main([str(path), "--top", "0"]) == 2
        assert "--top must be at least 1" in capsys.readouterr().err

    def test_missing_file_exits_2_with_message(self, tmp_path, capsys):
        assert obs_report.main([str(tmp_path / "gone.jsonl")]) == 2
        assert "cannot read trace file" in capsys.readouterr().err

    def test_empty_trace_exits_1_with_hint(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert obs_report.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "contains no telemetry events" in err
        assert "REPRO_OBS_EXPORT" in err
