"""Unit tests for the CTDE trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.marl.actors import ActorGroup, ClassicalActor, RandomActor
from repro.marl.frameworks import build_framework
from repro.marl.critics import ClassicalCentralCritic
from repro.marl.trainer import CTDETrainer, rollout_episode


def tiny_setup(seed=0, episode_limit=6, initial_queue_level=0.5,
               **train_overrides):
    env_config = SingleHopConfig(
        episode_limit=episode_limit, initial_queue_level=initial_queue_level
    )
    rng = np.random.default_rng(seed)
    env = SingleHopOffloadEnv(env_config, rng=np.random.default_rng(seed + 1))
    actors = ActorGroup(
        [
            ClassicalActor(
                env_config.observation_size, env_config.n_actions, (5,), rng
            )
            for _ in range(env_config.n_agents)
        ]
    )
    critic = ClassicalCentralCritic(env_config.state_size, (4,), rng)
    target = ClassicalCentralCritic(
        env_config.state_size, (4,), np.random.default_rng(seed + 2)
    )
    defaults = {
        "n_epochs": 3,
        "episodes_per_epoch": 2,
        "gamma": 0.9,
        "actor_lr": 1e-2,
        "critic_lr": 1e-2,
        "target_update_period": 2,
    }
    defaults.update(train_overrides)
    config = TrainingConfig(**defaults)
    trainer = CTDETrainer(env, actors, critic, target, config, rng)
    return trainer


class TestRolloutEpisode:
    def test_episode_and_stats_consistent(self):
        trainer = tiny_setup()
        episode, stats = rollout_episode(
            trainer.env, trainer.actors, np.random.default_rng(3)
        )
        assert episode.length == 6
        assert stats["length"] == 6
        assert stats["total_reward"] == pytest.approx(episode.total_reward)
        assert 0.0 <= stats["mean_queue"] <= 1.0

    def test_greedy_rollout(self):
        trainer = tiny_setup()
        episode, _ = rollout_episode(
            trainer.env, trainer.actors, np.random.default_rng(3), greedy=True
        )
        assert episode.length == 6

    def test_random_group_rollout(self):
        trainer = tiny_setup()
        group = ActorGroup([RandomActor(4) for _ in range(4)])
        episode, stats = rollout_episode(
            trainer.env, group, np.random.default_rng(0)
        )
        assert episode.length == 6


class TestTrainerMechanics:
    def test_agent_count_mismatch_rejected(self):
        trainer = tiny_setup()
        group = ActorGroup([RandomActor(4)])
        with pytest.raises(ValueError):
            CTDETrainer(
                trainer.env, group, trainer.critic, trainer.target_critic,
                trainer.config, trainer.rng,
            )

    def test_target_initialised_to_critic(self):
        trainer = tiny_setup()
        states = np.random.default_rng(5).uniform(size=(3, 16))
        assert np.allclose(
            trainer.critic.values(states), trainer.target_critic.values(states)
        )

    def test_update_changes_parameters(self):
        trainer = tiny_setup()
        before_actor = [p.data.copy() for p in trainer.actors.parameters()]
        before_critic = [p.data.copy() for p in trainer.critic.parameters()]
        trainer.train_epoch()
        after_actor = trainer.actors.parameters()
        after_critic = trainer.critic.parameters()
        assert any(
            not np.allclose(b, a.data)
            for b, a in zip(before_actor, after_actor)
        )
        assert any(
            not np.allclose(b, a.data)
            for b, a in zip(before_critic, after_critic)
        )

    def test_target_sync_period(self):
        trainer = tiny_setup(target_update_period=2)
        trainer.train_epoch()  # epoch 1: no sync
        states = np.random.default_rng(5).uniform(size=(3, 16))
        diverged = not np.allclose(
            trainer.critic.values(states), trainer.target_critic.values(states)
        )
        assert diverged
        trainer.train_epoch()  # epoch 2: sync
        assert np.allclose(
            trainer.critic.values(states), trainer.target_critic.values(states)
        )

    def test_history_records(self):
        trainer = tiny_setup()
        trainer.train(n_epochs=3)
        assert trainer.history.n_epochs == 3
        record = trainer.history.records[-1]
        for key in (
            "epoch", "total_reward", "mean_queue", "empty_ratio",
            "overflow_ratio", "critic_loss", "actor_loss",
            "mean_abs_td_error", "mean_value",
        ):
            assert key in record

    def test_buffer_cleared_each_epoch(self):
        trainer = tiny_setup(episodes_per_epoch=2)
        trainer.train_epoch()
        assert trainer.buffer.n_episodes == 2  # this epoch's episodes only
        trainer.train_epoch()
        assert trainer.buffer.n_episodes == 2

    def test_callback_receives_records(self):
        trainer = tiny_setup()
        seen = []
        trainer.train(n_epochs=2, callback=seen.append)
        assert len(seen) == 2
        assert seen[0]["epoch"] == 1

    def test_callback_stop_iteration(self):
        trainer = tiny_setup()

        def stop_after_one(record):
            raise StopIteration

        trainer.train(n_epochs=5, callback=stop_after_one)
        assert trainer.history.n_epochs == 1

    def test_evaluate(self):
        trainer = tiny_setup()
        stats = trainer.evaluate(n_episodes=2)
        assert set(stats) == {
            "total_reward", "length", "mean_queue", "empty_ratio",
            "overflow_ratio",
        }

    def test_no_grad_clip(self):
        trainer = tiny_setup(grad_clip=None)
        trainer.train_epoch()  # must not raise

    def test_entropy_coef_path(self):
        trainer = tiny_setup(entropy_coef=0.05)
        record = trainer.train_epoch()
        assert np.isfinite(record["actor_loss"])


class TestVectorizedCollection:
    """Determinism regressions for the vectorized rollout engine.

    The serial-vs-batched comparison loops live in the cross-engine
    equivalence harness (``tests.helpers``), shared with the sharded
    engine's suite — one pinned contract, four engines.
    """

    @pytest.mark.parametrize("initial_queue_level", [0.5, "uniform"])
    def test_vector_n1_bit_identical_to_serial(self, initial_queue_level):
        """Same seed => bit-identical episodes/metrics/streams, serial vs
        N=1, through the shared harness."""
        from tests.helpers import assert_cross_engine_equivalence

        assert_cross_engine_equivalence(
            "single_hop",
            ("serial", "vector"),
            n_envs=1,
            n_workers=1,
            n_epochs=3,
            episode_limit=6,
            env_kwargs={"initial_queue_level": initial_queue_level},
        )

    def test_vector_n1_bit_identical_quantum(self):
        """The quantum framework's batched inference path is also exact."""
        env_config = SingleHopConfig(episode_limit=5)
        records = {}
        for mode in ("serial", "vector"):
            train = TrainingConfig(
                episodes_per_epoch=2, actor_lr=1e-3, critic_lr=1e-3,
                rollout_mode=mode, rollout_envs=1,
            )
            fw = build_framework(
                "proposed", seed=7, env_config=env_config, train_config=train
            )
            records[mode] = [fw.trainer.train_epoch() for _ in range(2)]
        for record_s, record_v in zip(records["serial"], records["vector"]):
            for key in record_s:
                assert record_s[key] == record_v[key], key

    def test_vector_n8_run_to_run_deterministic(self):
        """Same seed => identical metrics across runs at N=8."""
        def run():
            trainer = tiny_setup(
                seed=5, episodes_per_epoch=8, rollout_envs=8
            )
            assert trainer.vectorized_rollouts
            assert trainer.rollout_envs == 8
            return [trainer.train_epoch() for _ in range(2)]

        assert run() == run()

    def test_rollout_envs_clamped_to_episodes_per_epoch(self):
        trainer = tiny_setup(episodes_per_epoch=2, rollout_envs=16)
        assert trainer.rollout_envs == 2
        record = trainer.train_epoch()
        assert trainer.buffer.n_episodes == 2
        assert np.isfinite(record["total_reward"])

    def test_rollout_envs_clamped_to_divisor(self):
        """A non-divisor copy count would discard whole episodes each epoch."""
        trainer = tiny_setup(episodes_per_epoch=6, rollout_envs=4)
        assert trainer.rollout_envs == 3
        trainer.train_epoch()
        assert trainer.buffer.n_episodes == 6
        assert tiny_setup(episodes_per_epoch=7, rollout_envs=4).rollout_envs == 1
        assert tiny_setup(episodes_per_epoch=8, rollout_envs=4).rollout_envs == 4

    def test_auto_mode_engages_vector_path(self):
        assert not tiny_setup(rollout_envs=1).vectorized_rollouts
        assert tiny_setup(episodes_per_epoch=4, rollout_envs=4).vectorized_rollouts

    def test_collect_episodes_matches_serial_accounting(self):
        trainer = tiny_setup(episodes_per_epoch=4, rollout_envs=4)
        episodes, stats = trainer.collect_episodes(4)
        assert len(episodes) == 4 and len(stats) == 4
        for episode, stat in zip(episodes, stats):
            assert episode.length == 6
            assert stat["length"] == 6
            assert stat["total_reward"] == pytest.approx(episode.total_reward)
            assert set(stat) == {
                "total_reward", "length", "mean_queue", "empty_ratio",
                "overflow_ratio",
            }

    def test_vectorized_training_updates_parameters(self):
        trainer = tiny_setup(episodes_per_epoch=4, rollout_envs=4)
        before = [p.data.copy() for p in trainer.actors.parameters()]
        trainer.train_epoch()
        after = trainer.actors.parameters()
        assert any(
            not np.allclose(b, a.data) for b, a in zip(before, after)
        )
