"""Property and unit tests for the transition-block transports
(``repro.marl.parallel.transport``).

The shared-memory ring is exercised directly (framing codec, multi-slot
frames, wrap padding, exhausted-ring backpressure, larger-than-ring chunk
streaming, segment lifecycle) plus round-trips of arbitrary block
shapes/dtypes through both end-to-end transports via the worker protocol.
"""

import os
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.marl.buffer import Episode
from repro.marl.parallel.transport import (
    EPISODE_COLUMNS,
    BlockView,
    ShmRing,
    ShmRingTimeout,
    episode_from_block,
    episode_to_block,
    pack_block_table,
    unpack_block_table,
    _views_from_payload,
)

MAX_EXAMPLES = 25

BLOCK_DTYPES = (np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_)


@st.composite
def block_arrays(draw, max_arrays=5, max_dim=4, max_side=6):
    """An arbitrary transition block: several arrays of mixed dtype/shape,
    including 0-d scalars and zero-size arrays."""
    n_arrays = draw(st.integers(1, max_arrays))
    arrays = []
    for index in range(n_arrays):
        dtype = np.dtype(draw(st.sampled_from(BLOCK_DTYPES)))
        ndim = draw(st.integers(0, max_dim))
        shape = tuple(
            draw(st.integers(0, max_side)) for _ in range(ndim)
        )
        size = int(np.prod(shape, dtype=np.int64))
        seed_rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        if dtype == np.bool_:
            array = seed_rng.random(size).reshape(shape) < 0.5
        elif dtype.kind in "iu":
            array = seed_rng.integers(0, 100, size=size).astype(dtype)
            array = array.reshape(shape)
        else:
            array = seed_rng.normal(size=size).astype(dtype).reshape(shape)
        arrays.append(array)
    return arrays


def assert_blocks_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        a = np.asarray(a)
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b)


def roundtrip(writer, reader, arrays, timeout=10.0):
    """Publish one block and read it back, copying before slot release."""
    results = []

    def drain():
        view = reader.read_block(timeout=timeout)
        results.append([np.array(a, copy=True) for a in view.arrays])
        view.close()

    thread = threading.Thread(target=drain)
    thread.start()
    writer.publish(arrays, timeout=timeout)
    thread.join(timeout=timeout)
    assert not thread.is_alive()
    return results[0]


@pytest.fixture
def ring_pair():
    """A writer/reader attachment pair over one small segment."""
    writer = ShmRing(slot_bytes=256, n_slots=8)
    reader = ShmRing(slot_bytes=256, n_slots=8, name=writer.name)
    yield writer, reader
    reader.close()
    writer.close()


class TestBlockCodec:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(arrays=block_arrays())
    def test_table_roundtrip(self, arrays):
        """The dtype/shape table reproduces every array's metadata."""
        table, offsets, payload_len = pack_block_table(arrays)
        specs, table_len = unpack_block_table(table, 0)
        assert table_len == len(table)
        assert len(specs) == len(arrays)
        for array, (dtype, shape, offset), expect_off in zip(
            arrays, specs, offsets
        ):
            assert np.dtype(dtype) == array.dtype
            assert shape == array.shape
            assert offset == expect_off
        assert payload_len >= sum(a.nbytes for a in arrays)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(arrays=block_arrays())
    def test_payload_views_roundtrip(self, arrays):
        """Packing payloads at table offsets and viewing them back is exact
        (no ring involved — the pure codec)."""
        table, offsets, payload_len = pack_block_table(arrays)
        payload = bytearray(payload_len)
        for array, offset in zip(arrays, offsets):
            flat = np.ascontiguousarray(array).reshape(-1)
            payload[offset:offset + flat.nbytes] = flat.tobytes()
        specs, _ = unpack_block_table(table, 0)
        views = _views_from_payload(payload, 0, specs)
        assert_blocks_equal(arrays, views)

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError, match="object"):
            pack_block_table([np.array([{"a": 1}], dtype=object)])


class TestShmRingRoundtrip:
    # Reusing the ring across examples is deliberate: every round-trip
    # drains it completely, and reuse sweeps the wrap point across examples.
    @settings(
        max_examples=MAX_EXAMPLES, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(arrays=block_arrays())
    def test_arbitrary_blocks(self, ring_pair, arrays):
        """Any block of supported dtypes/shapes round-trips bit-exactly —
        single-frame, multi-slot, and chunked alike (the 2 KiB ring forces
        all three regimes across examples)."""
        writer, reader = ring_pair
        assert_blocks_equal(arrays, roundtrip(writer, reader, arrays))
        assert writer.pending_slots() == 0

    def test_block_larger_than_one_slot(self, ring_pair):
        """A block spanning several contiguous slots arrives intact."""
        writer, reader = ring_pair
        block = [np.arange(100.0)]  # 800 B payload > 256 B slot
        table, _, payload_len = pack_block_table(block)
        assert payload_len > writer.slot_bytes  # really multi-slot
        assert_blocks_equal(block, roundtrip(writer, reader, block))

    def test_block_larger_than_whole_ring_chunks(self, ring_pair):
        """A block bigger than the ring streams through chunk frames."""
        writer, reader = ring_pair
        block = [np.arange(5000.0), np.arange(64, dtype=np.int32)]
        assert block[0].nbytes > writer.capacity_bytes
        assert_blocks_equal(block, roundtrip(writer, reader, block))
        assert writer.pending_slots() == 0

    def test_many_blocks_wrap_the_ring(self, ring_pair):
        """Sustained traffic exercises wrap padding at every alignment."""
        writer, reader = ring_pair
        for i in range(64):
            block = [np.arange(i, dtype=np.int64), np.array(float(i))]
            assert_blocks_equal(block, roundtrip(writer, reader, block))
        assert writer.pending_slots() == 0

    def test_zero_copy_views_until_release(self, ring_pair):
        """Single-frame reads are views into the segment, valid until
        ``close`` releases the slots."""
        writer, reader = ring_pair
        writer.publish([np.arange(8.0)], timeout=5.0)
        view = reader.read_block(timeout=5.0)
        assert view.arrays[0].base is not None  # a view, not a copy
        assert not view.owned
        # The documented payload invariant: zero-copy views start 16-byte
        # aligned in the segment, safe for any numeric dtype.
        assert view.arrays[0].__array_interface__["data"][0] % 16 == 0
        assert np.array_equal(view.arrays[0], np.arange(8.0))
        before = writer.pending_slots()
        assert before > 0
        view.close()
        assert writer.pending_slots() == 0


class TestBackpressure:
    def test_exhausted_ring_blocks_writer_until_release(self):
        """With the ring full, ``publish`` waits; releasing one block's
        slots unblocks exactly one more publish (bounded in-flight data)."""
        writer = ShmRing(slot_bytes=256, n_slots=4)
        reader = ShmRing(slot_bytes=256, n_slots=4, name=writer.name)
        try:
            block = [np.arange(40.0)]  # ~2 slots with header+table
            writer.publish(block, timeout=5.0)
            writer.publish(block, timeout=5.0)  # ring now effectively full
            with pytest.raises(ShmRingTimeout):
                writer.publish(block, timeout=0.2)

            published = threading.Event()

            def blocked_publish():
                writer.publish(block, timeout=10.0)
                published.set()

            thread = threading.Thread(target=blocked_publish)
            thread.start()
            time.sleep(0.05)
            assert not published.is_set()  # still waiting on a full ring
            view = reader.read_block(timeout=5.0)
            view.close()  # release one block's slots
            assert published.wait(timeout=10.0)
            thread.join(timeout=10.0)
            # Everything in flight stayed within the ring's capacity.
            assert writer.pending_slots() <= writer.n_slots
            for _ in range(2):
                view = reader.read_block(timeout=5.0)
                assert_blocks_equal(block, [np.array(a) for a in view.arrays])
                view.close()
            assert writer.pending_slots() == 0
        finally:
            reader.close()
            writer.close()

    def test_sustained_stream_never_exceeds_capacity(self):
        """A fast writer against a slow reader stays bounded by the ring."""
        writer = ShmRing(slot_bytes=256, n_slots=4)
        reader = ShmRing(slot_bytes=256, n_slots=4, name=writer.name)
        n_blocks = 24
        max_pending = []
        try:
            def produce():
                for i in range(n_blocks):
                    writer.publish([np.full(30, float(i))], timeout=10.0)

            thread = threading.Thread(target=produce)
            thread.start()
            for i in range(n_blocks):
                view = reader.read_block(timeout=10.0)
                max_pending.append(writer.pending_slots())
                assert np.array_equal(view.arrays[0], np.full(30, float(i)))
                view.close()
                time.sleep(0.002)  # deliberately slower than the writer
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert max(max_pending) <= writer.n_slots
        finally:
            reader.close()
            writer.close()

    def test_abort_check_interrupts_wait(self):
        writer = ShmRing(slot_bytes=256, n_slots=4)
        try:
            def abort():
                raise RuntimeError("peer vanished")

            with pytest.raises(RuntimeError, match="peer vanished"):
                writer.read_block(timeout=5.0, abort_check=abort)
        finally:
            writer.close()


class TestSegmentLifecycle:
    def test_segment_named_and_released(self):
        ring = ShmRing(slot_bytes=256, n_slots=4)
        name = ring.name
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(f"/dev/shm/{name}")
        ring.close()
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")
        ring.close()  # idempotent

    def test_attachment_does_not_unlink(self):
        ring = ShmRing(slot_bytes=256, n_slots=4)
        attached = ShmRing(slot_bytes=256, n_slots=4, name=ring.name)
        attached.close()
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(f"/dev/shm/{ring.name}")
        ring.close()

    def test_reset_reclaims_everything(self):
        ring = ShmRing(slot_bytes=256, n_slots=4)
        reader = ShmRing(slot_bytes=256, n_slots=4, name=ring.name)
        try:
            ring.publish([np.arange(10.0)], timeout=5.0)
            assert ring.pending_slots() > 0
            ring.reset()
            assert ring.pending_slots() == 0
            # The ring is immediately reusable after a reset.
            ring.publish([np.arange(3.0)], timeout=5.0)
            view = reader.read_block(timeout=5.0)
            assert np.array_equal(view.arrays[0], np.arange(3.0))
            view.close()
        finally:
            reader.close()
            ring.close()

    def test_tiny_ring_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            ShmRing(slot_bytes=256, n_slots=1)


class TestEpisodeBlockCodec:
    def test_episode_roundtrip(self):
        episode = Episode()
        rng = np.random.default_rng(0)
        for t in range(4):
            episode.add(
                rng.normal(size=16), rng.normal(size=(4, 4)),
                rng.integers(0, 4, size=4), float(rng.normal()),
                rng.normal(size=16), rng.normal(size=(4, 4)), t == 3,
            )
        episode.finish()
        rebuilt = episode_from_block(episode_to_block(episode))
        for column in EPISODE_COLUMNS:
            assert np.array_equal(
                getattr(episode, column), getattr(rebuilt, column)
            )
        assert rebuilt.length == episode.length
        assert rebuilt.total_reward == episode.total_reward
        assert rebuilt._finished


@st.composite
def episode_batches(draw, max_episodes=3, max_steps=4):
    """Small random transition batches with varying shapes."""
    n_episodes = draw(st.integers(1, max_episodes))
    n_steps = draw(st.integers(1, max_steps))
    n_agents = draw(st.integers(1, 3))
    obs_size = draw(st.integers(1, 5))
    state_size = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    episodes = []
    for _ in range(n_episodes):
        episode = Episode()
        for t in range(n_steps):
            episode.add(
                rng.normal(size=state_size),
                rng.normal(size=(n_agents, obs_size)),
                rng.integers(0, 4, size=n_agents),
                float(rng.normal()),
                rng.normal(size=state_size),
                rng.normal(size=(n_agents, obs_size)),
                t == n_steps - 1,
            )
        episodes.append(episode.finish())
    return episodes


class TestEndToEndTransports:
    """Arbitrary blocks through the full worker protocol, both transports."""

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    @settings(max_examples=10, deadline=None)
    @given(episodes=episode_batches())
    def test_collect_reply_roundtrip(self, transport, episodes):
        """A collect-shaped reply (episodes + control payload) crosses a
        real worker process bit-exactly over either transport."""
        import multiprocessing

        from repro.marl.parallel.transport import (
            make_transport,
            make_worker_endpoint,
        )

        def echo_worker(connection, info):
            endpoint = make_worker_endpoint(connection, info)
            while True:
                try:
                    message = endpoint.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "close":
                    endpoint.send_ok(None)
                    break
                endpoint.send_ok(message[1])
            endpoint.close()

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        transport_obj = make_transport(
            transport, slot_bytes=256, n_slots=8
        )
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=echo_worker,
            args=(child_end, transport_obj.worker_info()),
            daemon=True,
        )
        process.start()
        child_end.close()
        channel = transport_obj.parent_channel(process, parent_end)
        try:
            payload = {
                "episodes": episodes,
                "stats": [{"total_reward": e.total_reward} for e in episodes],
                "marker": 123,
            }
            channel.send(("echo", payload))
            result = channel.recv()
            assert result["marker"] == 123
            assert result["stats"] == payload["stats"]
            assert len(result["episodes"]) == len(episodes)
            for sent, got in zip(episodes, result["episodes"]):
                for column in EPISODE_COLUMNS:
                    assert np.array_equal(
                        getattr(sent, column), getattr(got, column)
                    ), column
            channel.send(("close",))
            channel.recv()
        finally:
            channel.close()
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()
            transport_obj.close()
        name = transport_obj.segment_name()
        if name is not None and os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")


class TestArrayReplyBlocks:
    """Generic ``"arrays"`` replies — the serving tier's probability
    blocks — ride both transports bit-exactly (the shm ring ships them as
    one array block next to the pickled control payload)."""

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_arrays_roundtrip(self, transport):
        import multiprocessing

        from repro.marl.parallel.transport import (
            make_transport,
            make_worker_endpoint,
        )

        def echo_worker(connection, info):
            endpoint = make_worker_endpoint(connection, info)
            while True:
                try:
                    message = endpoint.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "close":
                    endpoint.send_ok(None)
                    break
                endpoint.send_ok(message[1])
            endpoint.close()

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        transport_obj = make_transport(transport, slot_bytes=256, n_slots=8)
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=echo_worker,
            args=(child_end, transport_obj.worker_info()),
            daemon=True,
        )
        process.start()
        child_end.close()
        channel = transport_obj.parent_channel(process, parent_end)
        try:
            rng = np.random.default_rng(11)
            arrays = [
                rng.normal(size=(3, 4)),
                np.array([], dtype=np.int64),
                rng.normal(size=(2, 2, 2)).astype(np.float32),
                np.asarray(7.5),
            ]
            channel.send(("echo", {"arrays": arrays, "generation": 3}))
            result = channel.recv()
            assert result["generation"] == 3
            assert len(result["arrays"]) == len(arrays)
            for sent, got in zip(arrays, result["arrays"]):
                assert got.dtype == sent.dtype
                assert np.array_equal(got, sent)

            # An empty arrays list crosses too (no block published).
            channel.send(("echo", {"arrays": [], "note": "empty"}))
            result = channel.recv()
            assert result["arrays"] == []
            assert result["note"] == "empty"

            channel.send(("close",))
            channel.recv()
        finally:
            channel.close()
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()
            transport_obj.close()
        name = transport_obj.segment_name()
        if name is not None and os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")


def test_block_view_close_is_idempotent():
    calls = []
    view = BlockView([np.arange(3)], release=lambda: calls.append(1))
    view.close()
    view.close()
    assert calls == [1]
    assert view.arrays is None
