"""Equivalence property tests: vector envs vs. N independent serial envs.

The serial environments are ground truth.  For seeded RNG streams, a
``VectorEnv(N)`` must match ``N`` independent serial environments
step-for-step — observations, global state, rewards, ``info`` dicts and
done flags — and ``act_batch`` must agree with per-observation ``act``
under greedy decoding.
"""

import numpy as np
import pytest

from repro.config import SingleHopConfig
from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import (
    MultiHopVectorEnv,
    SingleHopVectorEnv,
    VectorEnv,
    make_vector_env,
)
from repro.marl.actors import ActorGroup, ClassicalActor, RandomActor
from repro.marl.frameworks import build_framework


def serial_single_hop(n_envs, cfg, base_seed=100):
    return [
        SingleHopOffloadEnv(cfg, rng=np.random.default_rng(base_seed + i))
        for i in range(n_envs)
    ]


def vector_single_hop(n_envs, cfg, base_seed=100, **kwargs):
    rngs = [np.random.default_rng(base_seed + i) for i in range(n_envs)]
    return SingleHopVectorEnv(n_envs, config=cfg, rngs=rngs, **kwargs)


def assert_info_equal(serial_info, vector_info):
    assert serial_info.keys() == vector_info.keys()
    for key, value in serial_info.items():
        assert np.array_equal(
            np.asarray(value), np.asarray(vector_info[key])
        ), f"info[{key!r}] diverged"


class TestSingleHopEquivalence:
    @pytest.mark.parametrize("initial_level", [0.5, "uniform"])
    def test_step_for_step_vs_serial(self, initial_level):
        cfg = SingleHopConfig(episode_limit=6, initial_queue_level=initial_level)
        n_envs = 5
        serial = serial_single_hop(n_envs, cfg)
        vector = vector_single_hop(n_envs, cfg)

        obs_v, state_v = vector.reset()
        for i, env in enumerate(serial):
            obs_s, state_s = env.reset()
            assert np.array_equal(np.stack(obs_s), obs_v[i])
            assert np.array_equal(state_s, state_v[i])

        action_rng = np.random.default_rng(0)
        for _ in range(2 * cfg.episode_limit + 3):
            actions = action_rng.integers(
                0, cfg.n_actions, size=(n_envs, cfg.n_agents)
            )
            result = vector.step(actions)
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                assert np.array_equal(
                    np.stack(serial_result.observations),
                    result.final_observations[i],
                )
                assert np.array_equal(
                    serial_result.state, result.final_states[i]
                )
                assert serial_result.reward == result.rewards[i]
                assert serial_result.done == bool(result.dones[i])
                assert_info_equal(serial_result.info, result.infos[i])
                if serial_result.done:
                    # Auto-reset must draw exactly what a serial reset draws.
                    obs_s, state_s = env.reset()
                    assert np.array_equal(np.stack(obs_s), result.observations[i])
                    assert np.array_equal(state_s, result.states[i])

    def test_vectorized_stats_match_info_dicts(self):
        """The hot-path stat arrays equal the lazily built info values."""
        cfg = SingleHopConfig(episode_limit=5)
        vector = vector_single_hop(4, cfg)
        vector.reset()
        action_rng = np.random.default_rng(3)
        for _ in range(5):
            actions = action_rng.integers(0, cfg.n_actions, size=(4, cfg.n_agents))
            result = vector.step(actions)
            infos = result.infos
            for i in range(4):
                assert result.mean_queues[i] == infos[i]["mean_queue"]
                assert result.empty_ratios[i] == infos[i]["empty_ratio"]
                assert result.overflow_ratios[i] == infos[i]["overflow_ratio"]

    def test_conserve_packets_mode(self):
        cfg = SingleHopConfig(episode_limit=4, conserve_packets=True)
        serial = serial_single_hop(3, cfg)
        vector = vector_single_hop(3, cfg)
        vector.reset()
        [env.reset() for env in serial]
        action_rng = np.random.default_rng(1)
        for _ in range(4):
            actions = action_rng.integers(0, cfg.n_actions, size=(3, cfg.n_agents))
            result = vector.step(actions)
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                assert serial_result.reward == result.rewards[i]
                assert np.array_equal(
                    serial_result.info["sent"], result.infos[i]["sent"]
                )

    def test_make_vector_env_row0_shares_serial_stream(self):
        cfg = SingleHopConfig(episode_limit=4, initial_queue_level="uniform")
        reference = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(9))
        source = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(9))
        vector = make_vector_env(source, 3)
        assert vector.rngs[0] is source.rng

        obs_v, _ = vector.reset()
        obs_s, _ = reference.reset()
        assert np.array_equal(np.stack(obs_s), obs_v[0])
        actions = np.zeros((3, cfg.n_agents), dtype=np.int64)
        result = vector.step(actions)
        serial_result = reference.step([0] * cfg.n_agents)
        assert serial_result.reward == result.rewards[0]
        assert np.array_equal(
            np.stack(serial_result.observations), result.final_observations[0]
        )

    def test_auto_reset_disabled_keeps_terminal_state(self):
        cfg = SingleHopConfig(episode_limit=2)
        vector = vector_single_hop(2, cfg, auto_reset=False)
        vector.reset()
        actions = np.zeros((2, cfg.n_agents), dtype=np.int64)
        vector.step(actions)
        result = vector.step(actions)
        assert result.dones.all()
        assert np.array_equal(result.observations, result.final_observations)

    def test_action_validation(self):
        cfg = SingleHopConfig(episode_limit=3)
        vector = vector_single_hop(2, cfg)
        vector.reset()
        with pytest.raises(ValueError, match="shape"):
            vector.step(np.zeros((3, cfg.n_agents), dtype=np.int64))
        with pytest.raises(ValueError, match="action indices"):
            vector.step(np.full((2, cfg.n_agents), cfg.n_actions))

    def test_rng_count_validation(self):
        cfg = SingleHopConfig(episode_limit=3)
        with pytest.raises(ValueError, match="generators"):
            SingleHopVectorEnv(3, config=cfg, rngs=[np.random.default_rng(0)])
        with pytest.raises(ValueError, match="n_envs"):
            SingleHopVectorEnv(0, config=cfg)


class TestMultiHopEquivalence:
    @pytest.mark.parametrize("full_mesh", [True, False])
    def test_step_for_step_vs_serial(self, full_mesh):
        topology = layered_topology((3, 2, 2), full_mesh=full_mesh)
        n_envs = 4
        serial = [
            MultiHopOffloadEnv(
                topology, episode_limit=5, rng=np.random.default_rng(40 + i)
            )
            for i in range(n_envs)
        ]
        vector = MultiHopVectorEnv(
            n_envs,
            topology,
            episode_limit=5,
            rngs=[np.random.default_rng(40 + i) for i in range(n_envs)],
        )

        obs_v, state_v = vector.reset()
        for i, env in enumerate(serial):
            obs_s, state_s = env.reset()
            assert np.array_equal(np.stack(obs_s), obs_v[i])
            assert np.array_equal(state_s, state_v[i])

        action_rng = np.random.default_rng(2)
        for _ in range(11):
            actions = action_rng.integers(
                0, vector.n_actions, size=(n_envs, vector.n_agents)
            )
            result = vector.step(actions)
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                assert np.array_equal(
                    np.stack(serial_result.observations),
                    result.final_observations[i],
                )
                assert serial_result.reward == result.rewards[i]
                assert serial_result.done == bool(result.dones[i])
                assert_info_equal(serial_result.info, result.infos[i])
                if serial_result.done:
                    env.reset()

    def test_make_vector_env_dispatch(self):
        topology = layered_topology((2, 2))
        env = MultiHopOffloadEnv(
            topology, episode_limit=4, rng=np.random.default_rng(3)
        )
        vector = make_vector_env(env, 2)
        assert isinstance(vector, MultiHopVectorEnv)
        assert vector.n_agents == env.n_agents
        assert vector.episode_limit == env.episode_limit

    def test_make_vector_env_rejects_unknown(self):
        with pytest.raises(TypeError):
            make_vector_env(object(), 2)

    def test_multi_hop_trainer_vectorized(self):
        """The vector path also drives CTDE training on multi-hop envs."""
        from repro.config import TrainingConfig
        from repro.marl.critics import ClassicalCentralCritic
        from repro.marl.trainer import CTDETrainer

        topology = layered_topology((2, 2))
        env = MultiHopOffloadEnv(
            topology, episode_limit=4, rng=np.random.default_rng(6)
        )
        rng = np.random.default_rng(0)
        actors = ActorGroup(
            [
                ClassicalActor(
                    env.observation_size, env.n_actions, (4,), rng
                )
                for _ in range(env.n_agents)
            ]
        )
        critic = ClassicalCentralCritic(env.state_size, (4,), rng)
        target = ClassicalCentralCritic(
            env.state_size, (4,), np.random.default_rng(1)
        )
        config = TrainingConfig(
            episodes_per_epoch=4, actor_lr=1e-2, critic_lr=1e-2,
            rollout_envs=4,
        )
        trainer = CTDETrainer(env, actors, critic, target, config, rng)
        assert trainer.vectorized_rollouts
        record = trainer.train_epoch()
        assert np.isfinite(record["total_reward"])
        assert trainer.buffer.n_episodes == 4


def classical_group(cfg, seed=0):
    rng = np.random.default_rng(seed)
    return ActorGroup(
        [
            ClassicalActor(cfg.observation_size, cfg.n_actions, (5,), rng)
            for _ in range(cfg.n_agents)
        ]
    )


class TestActBatch:
    def test_greedy_agrees_with_serial_act_classical(self):
        cfg = SingleHopConfig()
        group = classical_group(cfg)
        rng = np.random.default_rng(4)
        observations = rng.uniform(size=(6, cfg.n_agents, cfg.observation_size))
        batch = group.act_batch(observations, rng, greedy=True)
        for i in range(observations.shape[0]):
            serial = group.act(list(observations[i]), rng, greedy=True)
            assert list(batch[i]) == serial

    def test_greedy_agrees_with_serial_act_quantum(self):
        cfg = SingleHopConfig(episode_limit=5)
        framework = build_framework("proposed", seed=2, env_config=cfg)
        group = framework.actors
        rng = np.random.default_rng(5)
        observations = rng.uniform(size=(4, cfg.n_agents, cfg.observation_size))
        batch = group.act_batch(observations, rng, greedy=True)
        for i in range(observations.shape[0]):
            serial = group.act(list(observations[i]), rng, greedy=True)
            assert list(batch[i]) == serial

    def test_batch_probabilities_match_per_observation(self):
        cfg = SingleHopConfig(episode_limit=5)
        framework = build_framework("proposed", seed=3, env_config=cfg)
        group = framework.actors
        rng = np.random.default_rng(6)
        observations = rng.uniform(size=(3, cfg.n_agents, cfg.observation_size))
        probs = group.batch_probabilities(observations)
        for i in range(3):
            for n, actor in enumerate(group.actors):
                expected = actor.probabilities(observations[i, n])[0]
                assert np.allclose(probs[i, n], expected, atol=1e-12)

    def test_sampling_stream_matches_serial_act(self):
        """A one-copy act_batch consumes rng exactly like serial act."""
        cfg = SingleHopConfig()
        group = classical_group(cfg)
        observations = np.random.default_rng(7).uniform(
            size=(1, cfg.n_agents, cfg.observation_size)
        )
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        batch = group.act_batch(observations, rng_a)
        serial = group.act(list(observations[0]), rng_b)
        assert list(batch[0]) == serial
        assert rng_a.random() == rng_b.random()  # identical stream position

    def test_random_actor_batch(self):
        group = ActorGroup([RandomActor(4) for _ in range(3)])
        rng = np.random.default_rng(8)
        observations = np.zeros((5, 3, 2))
        actions = group.act_batch(observations, rng)
        assert actions.shape == (5, 3)
        assert actions.min() >= 0 and actions.max() < 4
        with pytest.raises(RuntimeError, match="greedy"):
            group.act_batch(observations, rng, greedy=True)


class TestRaggedTermination:
    """Per-row data-dependent termination: serial stays ground truth."""

    def test_single_hop_ragged_step_for_step_vs_serial(self):
        cfg = SingleHopConfig(
            episode_limit=5, terminate_on_overflow=True,
            initial_queue_level=0.8,
        )
        n_envs = 4
        serial = serial_single_hop(n_envs, cfg)
        vector = vector_single_hop(n_envs, cfg)
        assert vector.has_data_dependent_termination
        vector.reset()
        [env.reset() for env in serial]

        action_rng = np.random.default_rng(5)
        done_rounds = []
        for round_index in range(3 * cfg.episode_limit):
            actions = action_rng.integers(
                0, cfg.n_actions, size=(n_envs, cfg.n_agents)
            )
            result = vector.step(actions)
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                assert serial_result.done == bool(result.dones[i])
                assert serial_result.reward == result.rewards[i]
                assert np.array_equal(
                    np.stack(serial_result.observations),
                    result.final_observations[i],
                )
                if serial_result.done:
                    done_rounds.append(round_index)
                    obs_s, state_s = env.reset()
                    assert np.array_equal(
                        np.stack(obs_s), result.observations[i]
                    )
                    assert np.array_equal(state_s, result.states[i])
        # The preloaded queues must actually cut episodes short somewhere,
        # otherwise this test degenerates into the fixed-horizon one.
        assert len(done_rounds) > (3 * cfg.episode_limit * n_envs
                                   // cfg.episode_limit) // n_envs

    def test_single_hop_ragged_ends_before_horizon(self):
        cfg = SingleHopConfig(
            episode_limit=50, terminate_on_overflow=True,
            initial_queue_level=0.95,
        )
        env = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(0))
        assert env.has_data_dependent_termination
        env.reset()
        action_rng = np.random.default_rng(1)
        steps = 0
        done = False
        while not done and steps < cfg.episode_limit:
            result = env.step(
                list(action_rng.integers(0, cfg.n_actions, cfg.n_agents))
            )
            done = result.done
            steps += 1
        assert done and steps < cfg.episode_limit

    def test_multi_hop_ragged_step_for_step_vs_serial(self):
        topology = layered_topology((3, 2, 2))
        n_envs = 3
        serial = [
            MultiHopOffloadEnv(
                topology, episode_limit=5, initial_queue_level=0.8,
                terminate_on_overflow=True,
                rng=np.random.default_rng(60 + i),
            )
            for i in range(n_envs)
        ]
        vector = MultiHopVectorEnv(
            n_envs, topology, episode_limit=5, initial_queue_level=0.8,
            terminate_on_overflow=True,
            rngs=[np.random.default_rng(60 + i) for i in range(n_envs)],
        )
        assert vector.has_data_dependent_termination
        vector.reset()
        [env.reset() for env in serial]
        action_rng = np.random.default_rng(7)
        early = 0
        for _ in range(12):
            actions = action_rng.integers(
                0, vector.n_actions, size=(n_envs, vector.n_agents)
            )
            result = vector.step(actions)
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                assert serial_result.done == bool(result.dones[i])
                assert serial_result.reward == result.rewards[i]
                if serial_result.done:
                    if env._t < env.episode_limit:
                        early += 1
                    env.reset()
        assert early > 0  # raggedness actually exercised

    def test_fixed_envs_unaffected_by_hook(self):
        """terminate_on_overflow off => flag off and horizon-only dones."""
        cfg = SingleHopConfig(episode_limit=2, initial_queue_level=0.95)
        env = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(0))
        assert not env.has_data_dependent_termination
        vector = vector_single_hop(2, cfg)
        assert not vector.has_data_dependent_termination
        vector.reset()
        actions = np.zeros((2, cfg.n_agents), dtype=np.int64)
        assert not vector.step(actions).dones.any()
        assert vector.step(actions).dones.all()

    def test_make_vector_env_propagates_ragged_flags(self):
        cfg = SingleHopConfig(episode_limit=5, terminate_on_overflow=True)
        env = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(3))
        assert make_vector_env(env, 2).has_data_dependent_termination
        topology = layered_topology((2, 2))
        env = MultiHopOffloadEnv(
            topology, episode_limit=5, terminate_on_overflow=True,
            rng=np.random.default_rng(3),
        )
        assert make_vector_env(env, 2).has_data_dependent_termination


class TestInfoSnapshot:
    """The lazy ``infos`` must reflect the step they came from, not the
    env's state at read time (regression: stale-builder hazard)."""

    def test_infos_read_after_later_steps(self):
        cfg = SingleHopConfig(episode_limit=2)
        n_envs = 3
        serial = serial_single_hop(n_envs, cfg)
        vector = vector_single_hop(n_envs, cfg)
        vector.reset()
        [env.reset() for env in serial]
        action_rng = np.random.default_rng(2)

        results, serial_infos = [], []
        # Two steps: the second crosses the horizon, so reading the first
        # result afterwards also spans an auto-reset.
        for _ in range(2):
            actions = action_rng.integers(
                0, cfg.n_actions, size=(n_envs, cfg.n_agents)
            )
            results.append(vector.step(actions))
            step_infos = []
            for i, env in enumerate(serial):
                serial_result = env.step(list(actions[i]))
                step_infos.append(serial_result.info)
                if serial_result.done:
                    env.reset()
            serial_infos.append(step_infos)

        # Only now materialise the infos — in reverse, for good measure.
        for result, step_infos in zip(reversed(results),
                                      reversed(serial_infos)):
            for i in range(n_envs):
                assert_info_equal(step_infos[i], result.infos[i])


class _LiveViewEnv(VectorEnv):
    """Minimal vector env whose observation hook returns a *live* view into
    a persistent buffer — the aliasing hazard ``step`` must guard against."""

    n_agents = 1
    n_actions = 2
    observation_size = 1
    state_size = 1
    episode_limit = 2

    def __init__(self, n_envs):
        super().__init__(
            n_envs,
            rngs=[np.random.default_rng(i) for i in range(n_envs)],
        )
        self._buffer = np.zeros((n_envs, self.n_agents,
                                 self.observation_size))

    def _reset_rows(self, rows):
        self._buffer[rows] = 0.0

    def _apply_actions(self, actions):
        self._buffer += 1.0
        zeros = np.zeros(self.n_envs)
        return (
            zeros,
            (zeros, zeros, zeros),
            lambda: [{} for _ in range(self.n_envs)],
        )

    def _observations(self):
        return self._buffer


class TestTerminalViewAliasing:
    """Auto-reset must not clobber the terminal views (regression)."""

    def test_final_views_survive_auto_reset(self):
        env = _LiveViewEnv(3)
        env.reset()
        actions = np.zeros((3, 1), dtype=np.int64)
        env.step(actions)
        result = env.step(actions)  # hits the horizon -> auto-reset
        assert result.dones.all()
        # The live buffer was zeroed by the reset, but the terminal views
        # must still hold the pre-reset values.
        assert np.all(result.final_observations == 2.0)
        assert np.all(result.final_states == 2.0)
        assert np.all(result.observations == 0.0)
        assert np.all(result.states == 0.0)

    def test_non_terminal_views_stay_zero_copy(self):
        env = _LiveViewEnv(2)
        env.reset()
        actions = np.zeros((2, 1), dtype=np.int64)
        result = env.step(actions)  # no row done -> no defensive copy
        assert not result.dones.any()
        assert result.final_observations is result.observations


class TestSurplusDiscard:
    """collect()'s (step, copy) completion order is a prefix contract:
    a smaller quota returns exactly the head of a larger one."""

    @staticmethod
    def _collect(cfg, quota, n_envs=4, seed=17):
        from repro.marl.rollout import VectorRolloutCollector

        env = SingleHopOffloadEnv(cfg, rng=np.random.default_rng(seed))
        vector = make_vector_env(env, n_envs)
        actors = classical_group(cfg, seed=seed + 1)
        collector = VectorRolloutCollector(vector, actors)
        return collector.collect(quota, np.random.default_rng(seed + 2))

    def _assert_prefix(self, cfg):
        episodes_small, stats_small = self._collect(cfg, 3)
        episodes_large, stats_large = self._collect(cfg, 9)
        assert len(episodes_small) == 3 and len(episodes_large) == 9
        for small, large in zip(episodes_small, episodes_large):
            for column in ("states", "observations", "actions", "rewards",
                           "next_states", "next_observations", "dones"):
                assert np.array_equal(
                    getattr(small, column), getattr(large, column)
                ), column
        assert stats_small == stats_large[:3]
        return stats_large

    def test_fixed_env_prefix(self):
        cfg = SingleHopConfig(episode_limit=3)
        stats = self._assert_prefix(cfg)
        assert {s["length"] for s in stats} == {3}

    def test_ragged_env_prefix(self):
        cfg = SingleHopConfig(
            episode_limit=5, terminate_on_overflow=True,
            initial_queue_level=0.8,
        )
        stats = self._assert_prefix(cfg)
        assert len({s["length"] for s in stats}) > 1  # genuinely ragged
