"""Unit tests for the visualisation package."""

import json

import numpy as np
import pytest

from repro.quantum import statevector as sv
from repro.viz.ascii_plots import line_plot, multi_series_table, sparkline
from repro.viz.hls import amplitude_to_hls, amplitude_to_rgb, phase_to_hue, rgb_grid
from repro.viz.qubit_heatmap import QubitStateHeatmap, render_ansi, render_text


class TestHls:
    def test_phase_to_hue_range(self):
        phases = np.linspace(-np.pi, np.pi, 33)
        hues = phase_to_hue(phases)
        assert np.all(hues >= 0.0) and np.all(hues < 1.0)

    def test_phase_wraps(self):
        assert phase_to_hue(-np.pi) == pytest.approx(phase_to_hue(np.pi) % 1.0)

    def test_zero_magnitude_is_dark_and_unsaturated(self):
        _, lightness, saturation = amplitude_to_hls(0.0, 0.0)
        assert lightness < 0.1
        assert saturation == 0.0

    def test_full_magnitude_is_light(self):
        _, light_full, _ = amplitude_to_hls(1.0, 0.0)
        _, light_half, _ = amplitude_to_hls(0.5, 0.0)
        assert light_full > light_half

    def test_rgb_dtype_and_range(self):
        rgb = amplitude_to_rgb(np.array([0.5, 1.0]), np.array([0.0, np.pi / 2]))
        assert rgb.dtype == np.uint8
        assert rgb.shape == (2, 3)

    def test_phase_changes_color(self):
        a = amplitude_to_rgb(1.0, 0.0)
        b = amplitude_to_rgb(1.0, np.pi)
        assert not np.array_equal(a, b)

    def test_rgb_grid_shape(self):
        grid = np.ones((4, 4), dtype=complex) / 4.0
        rgb = rgb_grid(grid)
        assert rgb.shape == (4, 4, 3)

    def test_max_magnitude_validation(self):
        with pytest.raises(ValueError):
            amplitude_to_hls(1.0, 0.0, max_magnitude=0.0)


class TestQubitStateHeatmap:
    def bell_like_state(self):
        psi = sv.zero_state(4)
        psi = sv.apply_gate(psi, "h", (0,), 4)
        psi = sv.apply_gate(psi, "cnot", (0, 1), 4)
        return psi

    def test_grid_shape(self):
        heatmap = QubitStateHeatmap(self.bell_like_state())
        assert heatmap.rows == 4 and heatmap.cols == 4
        assert heatmap.magnitude.shape == (4, 4)
        assert heatmap.phase.shape == (4, 4)

    def test_magnitudes_square_to_one(self):
        heatmap = QubitStateHeatmap(self.bell_like_state())
        assert (heatmap.magnitude**2).sum() == pytest.approx(1.0)

    def test_fig4_cell_layout(self):
        """|0110>: row = q0q1 = 01, col = q2q3 = 10."""
        heatmap = QubitStateHeatmap(sv.basis_state(4, 0b0110))
        assert heatmap.magnitude[1, 2] == pytest.approx(1.0)

    def test_batch_of_one_accepted(self):
        QubitStateHeatmap(sv.zero_state(4))

    def test_batch_of_many_rejected(self):
        with pytest.raises(ValueError):
            QubitStateHeatmap(sv.zero_state(4, batch_size=2))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            QubitStateHeatmap(np.ones(6))

    def test_csv_export(self):
        csv = QubitStateHeatmap(self.bell_like_state()).to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "row,col,magnitude,phase"
        assert len(lines) == 17

    def test_json_export(self):
        doc = json.loads(QubitStateHeatmap(self.bell_like_state()).to_json())
        assert doc["n_qubits"] == 4
        assert len(doc["magnitude"]) == 4

    def test_rgb(self):
        rgb = QubitStateHeatmap(self.bell_like_state()).rgb()
        assert rgb.shape == (4, 4, 3)

    def test_render_ansi_contains_truecolor(self):
        out = render_ansi(QubitStateHeatmap(self.bell_like_state()))
        assert "\x1b[48;2;" in out
        assert out.count("\n") == 7  # two terminal rows per grid row

    def test_render_text(self):
        out = render_text(QubitStateHeatmap(self.bell_like_state()))
        assert "magnitude:" in out
        assert "phase/pi:" in out
        assert "0.707" in out


class TestAsciiPlots:
    def test_sparkline_length(self):
        assert len(sparkline(np.arange(10))) == 10

    def test_sparkline_flat(self):
        assert sparkline(np.ones(5)) == "▁▁▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_line_plot_contains_markers_and_legend(self):
        out = line_plot(
            {"proposed": np.arange(10.0), "comp1": -np.arange(10.0)},
            width=30,
            height=8,
            title="reward",
        )
        assert "reward" in out
        assert "* proposed" in out
        assert "+ comp1" in out

    def test_line_plot_constant_series(self):
        out = line_plot({"flat": np.zeros(5)}, width=10, height=4)
        assert "flat" in out

    def test_line_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})

    def test_table_alignment(self):
        out = multi_series_table(
            np.arange(3), {"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]}
        )
        lines = out.splitlines()
        assert lines[0].split() == ["epoch", "a", "b"]
        assert len(lines) == 4

    def test_table_max_rows_subsamples(self):
        out = multi_series_table(
            np.arange(100), {"a": np.arange(100.0)}, max_rows=10
        )
        assert len(out.splitlines()) <= 12

    def test_table_length_mismatch(self):
        with pytest.raises(ValueError):
            multi_series_table(np.arange(3), {"a": [1.0]})
