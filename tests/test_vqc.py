"""Unit tests for assembled VQC bundles."""

import numpy as np
import pytest

from repro.quantum.backends import StatevectorBackend
from repro.quantum.observables import PauliString
from repro.quantum.vqc import VQC, build_vqc, make_template
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.templates import (
    BasicEntanglerTemplate,
    RandomLayerTemplate,
    StronglyEntanglingTemplate,
)


class TestBuildVqc:
    def test_actor_shape(self):
        """The paper's actor: 4 qubits, 4 obs features, 50 weights, 4 Z's."""
        vqc = build_vqc(4, 4, 50, seed=0)
        assert vqc.n_qubits == 4
        assert vqc.n_features == 4
        assert vqc.n_weights == 50
        assert vqc.n_outputs == 4

    def test_critic_shape(self):
        """The paper's critic: 16 state features folded onto 4 qubits."""
        vqc = build_vqc(4, 16, 50, seed=0)
        assert vqc.n_features == 16
        # 16 encoding gates + 50 variational gates.
        assert vqc.circuit.n_operations == 66

    def test_encoding_selection(self):
        actor = build_vqc(4, 4, 10, seed=0)
        critic = build_vqc(4, 16, 10, seed=0)
        # Actor: single RX layer; critic: multi-layer cycle includes RY.
        actor_enc = [op.gate for op in actor.circuit.operations[:4]]
        critic_enc = [op.gate for op in critic.circuit.operations[:16]]
        assert set(actor_enc) == {"rx"}
        assert "ry" in critic_enc and "rz" in critic_enc

    def test_custom_observables(self):
        obs = [PauliString.z(0)]
        vqc = build_vqc(4, 4, 10, observables=obs)
        assert vqc.n_outputs == 1

    def test_run(self, rng):
        vqc = build_vqc(3, 3, 9, seed=1)
        weights = vqc.initial_weights(rng)
        out = vqc.run(StatevectorBackend(), rng.uniform(size=(2, 3)), weights)
        assert out.shape == (2, 3)

    def test_initial_weights_shape_checked(self, rng):
        vqc = build_vqc(2, 2, 6, seed=1)
        weights = vqc.initial_weights(rng)
        assert weights.shape == (6,)

    def test_templates_selectable(self):
        for name, cls in (
            ("random", RandomLayerTemplate),
            ("basic_entangler", BasicEntanglerTemplate),
            ("strongly_entangling", StronglyEntanglingTemplate),
        ):
            vqc = build_vqc(4, 4, 50, template=name)
            assert isinstance(vqc.template, cls)

    def test_partial_layer_feature_count(self):
        vqc = build_vqc(4, 10, 20)
        assert vqc.n_features == 10
        assert vqc.circuit.n_operations == 30

    def test_repr(self):
        assert "n_weights=50" in repr(build_vqc(4, 4, 50))


class TestMakeTemplate:
    def test_random_budget_exact(self):
        assert make_template("random", 4, 50).n_weights == 50

    def test_basic_entangler_rounds_down(self):
        template = make_template("basic_entangler", 4, 50)
        assert template.n_weights == 48  # 12 layers x 4 qubits

    def test_strongly_entangling_rounds_down(self):
        template = make_template("strongly_entangling", 4, 50)
        assert template.n_weights == 48  # 4 layers x 4 qubits x 3

    def test_below_one_layer_raises(self):
        with pytest.raises(ValueError):
            make_template("basic_entangler", 8, 4)

    def test_unknown_template(self):
        with pytest.raises(ValueError):
            make_template("magic", 4, 50)


class TestVqcValidation:
    def test_weight_shape_mismatch_raises(self, rng):
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), ParameterRef.weight(0))

        class WrongTemplate:
            def initial_weights(self, rng):
                return np.zeros(3)

        vqc = VQC(circuit, [PauliString.z(0)], WrongTemplate())
        with pytest.raises(ValueError):
            vqc.initial_weights(rng)

    def test_non_contiguous_circuit_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.add("rx", (0,), ParameterRef.weight(2))
        with pytest.raises(ValueError):
            VQC(circuit, [PauliString.z(0)], None)
