"""Unit tests for environment wrappers."""

import numpy as np
import pytest

from repro.config import SingleHopConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.wrappers import EpisodeStatsWrapper, RewardScaleWrapper, Wrapper


def make_env(episode_limit=4, seed=0):
    return SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=episode_limit),
        rng=np.random.default_rng(seed),
    )


def run_episode(env, seed=1):
    rng = np.random.default_rng(seed)
    env.reset()
    done = False
    total = 0.0
    while not done:
        result = env.step([env.action_space.sample(rng) for _ in range(4)])
        total += result.reward
        done = result.done
    return total


class TestWrapperBase:
    def test_passthrough_properties(self):
        env = make_env()
        wrapped = Wrapper(env)
        assert wrapped.n_agents == env.n_agents
        assert wrapped.action_space == env.action_space
        assert wrapped.state_size == env.state_size

    def test_attribute_delegation(self):
        wrapped = Wrapper(make_env())
        assert wrapped.decode_action(0) == (0, 0.1)

    def test_reset_and_step_delegate(self):
        wrapped = Wrapper(make_env())
        observations, state = wrapped.reset()
        assert len(observations) == 4
        result = wrapped.step([0, 0, 0, 0])
        assert result.reward <= 0.0

    def test_repr(self):
        assert "Wrapper" in repr(Wrapper(make_env()))


class TestEpisodeStatsWrapper:
    def test_summary_written_at_episode_end(self):
        env = EpisodeStatsWrapper(make_env(episode_limit=3))
        assert env.last_summary() is None
        total = run_episode(env)
        summary = env.last_summary()
        assert summary["length"] == 3
        assert summary["total_reward"] == pytest.approx(total)
        assert 0.0 <= summary["mean_queue"] <= 1.0

    def test_accumulates_across_episodes(self):
        env = EpisodeStatsWrapper(make_env(episode_limit=2))
        run_episode(env, seed=1)
        run_episode(env, seed=2)
        assert len(env.episode_summaries) == 2

    def test_reset_clears_running_accumulators(self):
        env = EpisodeStatsWrapper(make_env(episode_limit=3))
        env.reset()
        env.step([0, 0, 0, 0])
        env.reset()  # abandon the partial episode
        total = run_episode(env)
        assert env.episode_summaries[-1]["total_reward"] == pytest.approx(total)
        assert len(env.episode_summaries) == 1


class TestRewardScaleWrapper:
    def test_scales_reward(self):
        base = make_env(seed=5)
        scaled = RewardScaleWrapper(make_env(seed=5), scale=0.5)
        base.reset()
        scaled.reset()
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        for _ in range(4):
            actions_a = [base.action_space.sample(rng_a) for _ in range(4)]
            actions_b = [scaled.action_space.sample(rng_b) for _ in range(4)]
            result_a = base.step(actions_a)
            result_b = scaled.step(actions_b)
            assert result_b.reward == pytest.approx(0.5 * result_a.reward)

    def test_info_preserved(self):
        env = RewardScaleWrapper(make_env(), scale=2.0)
        env.reset()
        result = env.step([0, 0, 0, 0])
        assert "mean_queue" in result.info
